"""Batch repair: high-throughput monitoring of dirty tuple streams.

The paper evaluates CertainFix one tuple at a time; production workloads
(Guided Data Repair, AWMRR — see PAPERS.md) arrive as bulk streams of
thousands of dirty tuples that share most of their structure.  This module
adds the throughput layer on top of :class:`repro.repair.certainfix.CertainFix`:

* **shared precomputation** — certain regions, master hash indexes and the
  BDD suggestion cache are built once per ``(Σ, Dm)`` and reused by every
  session ("computed once and repeatedly used as long as Σ and Dm are
  unchanged");
* **validated-pattern memoization** — the unique-fix chase and TransFix
  both depend only on the *validated pattern* ``(Z', t[Z'])`` (every rule
  they may fire has its premise inside ``Z'`` and master data is fixed), so
  identical dirty shapes skip re-validation entirely;
* **versioned invalidation** — masters are reached through the
  :class:`~repro.engine.store.MasterStore` seam; every shared structure
  (regions, master indexes, the BDD, both memo tables) is stamped with the
  store version it was built against, and an ``insert``/``delete``/
  ``update`` of a master tuple moves the version so all of them rebuild
  lazily before the next monitored tuple — incremental master updates can
  no longer poison the shared caches;
* **chunked execution** — the input stream is consumed in bounded chunks
  (generators welcome: CSV ingestion never materializes the workload), with
  an optional thread or process fan-out over the read-only master state;
* **structured reporting** — :class:`BatchReport` carries throughput,
  rounds per tuple and per-cache hit rates for the perf trajectory.

Choosing an executor (``executor="thread"`` vs ``"process"``): monitoring is
embarrassingly parallel per dirty tuple — master data and Σ are read-only
while a tuple is fixed — but Python threads share one GIL.  The decision
rule is about where a session spends its time: an **I/O-bound oracle**
(live users, a feedback service over the network) releases the GIL while it
waits, so threads scale and cost nothing to set up; a **CPU-bound oracle**
(scoring models, simulated users over large masters — any workload where
the chase/TransFix/oracle arithmetic dominates) keeps the GIL busy, and
only a process pool buys real cores.  The process pool ships a picklable
:class:`EngineSpec` to each worker once (pool initializer), where it is
rehydrated — certain regions, master indexes and memo tables are rebuilt
per worker — so expect a per-worker warm-up cost that pays off on streams
much longer than ``workers × chunk_size``.

Determinism: with ``concurrency=1`` the engine produces sessions identical
to :meth:`CertainFix.fix_stream` on the same inputs.  With ``concurrency >
1`` each tuple is still monitored independently; without the BDD cache the
result is bit-identical to the sequential run (suggestions are pure
functions of ``(t, Z')``) under both executors, while with the BDD cache
the *suggestion order* may vary with thread interleaving or with how
chunks land on workers, but every produced fix remains a certain fix and
the fixed rows are identical (tests pin both properties).  Chunks are
dispatched to the process pool with stable sequence numbers and merged in
submission order, so results always come back in stream order.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import obs
from repro.engine.csvio import stream_rows_from_csv
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.store import StoreError, as_master_store
from repro.engine.tuples import Row
from repro.obs import count_fixes_by_rule, session_provenance
from repro.repair.certainfix import CertainFix, IncompleteFix
from repro.repair.invalidation import FootprintIndex, RecordingStore
from repro.repair.oracle import SimulatedUser
from repro.repair.transfix import TransFixResult


@dataclass
class MemoStats:
    """Hit/miss accounting for one validated-pattern memo table."""

    hits: int = 0
    misses: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.lookups
        return self.hits / total if total else 0.0

    def delta(self, earlier: "MemoStats") -> "MemoStats":
        return MemoStats(
            hits=self.hits - earlier.hits,
            misses=self.misses - earlier.misses,
        )

    def snapshot(self) -> "MemoStats":
        return MemoStats(hits=self.hits, misses=self.misses)


@dataclass
class BatchReport:
    """What one :meth:`BatchRepairEngine.run` did, in numbers."""

    tuples: int = 0
    completed: int = 0
    incomplete: int = 0
    rounds: int = 0
    chunks: int = 0
    elapsed: float = 0.0
    concurrency: int = 1
    chunk_size: int = 0
    executor: str = "thread"
    workers: int = 1
    #: Per-worker breakdown keyed by worker label — ``pid-<n>`` for the
    #: process pool, ``thread-<n>`` for the thread fan-out — each value a
    #: flat dict of chunk/tuple counts and memo-table hit/miss counters.
    #: Threads share one set of caches, so their rows split the shared
    #: counters by which thread performed each lookup.  Empty only for
    #: sequential runs (``concurrency=1``).
    worker_stats: dict = field(default_factory=dict)
    regions_precomputed: int = 0
    chase_memo: MemoStats = field(default_factory=MemoStats)
    transfix_memo: MemoStats = field(default_factory=MemoStats)
    suggestion_hits: int = 0
    suggestion_misses: int = 0
    cache_invalidations: int = 0
    #: Of the ``cache_invalidations``, how many were absorbed via per-key
    #: delta purges vs. how many fell back to the historical full drop.
    delta_purges: int = 0
    full_drops: int = 0
    master_version: int = 0
    #: Wall-clock seconds of the shared precomputation this run leaned on:
    #: ``region_precompute_s`` (paid once at engine construction, amortized
    #: across runs) and ``probe_warmup_s`` (chunk probe_many warm-up on
    #: batched-probe backends, summed across workers).
    timings: dict = field(default_factory=dict)
    #: ``{rule_name: fixed-cell count}`` across the run (provenance rollup;
    #: empty when provenance collection is off).
    fixes_by_rule: dict = field(default_factory=dict)
    #: Messages of :class:`~repro.engine.store.StoreError` failures that
    #: aborted the run (unreachable master server, closed connection,
    #: vanished database file).  A run that raises a ``StoreError`` still
    #: builds its report — sessions monitored before the failure, plus
    #: this field — and attaches it to the exception as ``exc.report``.
    store_errors: list = field(default_factory=list)

    @property
    def throughput(self) -> float:
        """Monitored tuples per second of wall clock."""
        return self.tuples / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def mean_rounds(self) -> float:
        return self.rounds / self.tuples if self.tuples else 0.0

    @property
    def suggestion_hit_rate(self) -> float:
        total = self.suggestion_hits + self.suggestion_misses
        return self.suggestion_hits / total if total else 0.0

    def to_dict(self) -> dict:
        return {
            "tuples": self.tuples,
            "completed": self.completed,
            "incomplete": self.incomplete,
            "rounds": self.rounds,
            "mean_rounds": round(self.mean_rounds, 4),
            "chunks": self.chunks,
            "chunk_size": self.chunk_size,
            "concurrency": self.concurrency,
            "executor": self.executor,
            "workers": self.workers,
            "worker_stats": {
                worker: dict(stats, **{
                    "chase_hit_rate": round(_rate(
                        stats["chase_hits"], stats["chase_misses"]
                    ), 4),
                    "transfix_hit_rate": round(_rate(
                        stats["transfix_hits"], stats["transfix_misses"]
                    ), 4),
                })
                for worker, stats in self.worker_stats.items()
            },
            "elapsed_s": round(self.elapsed, 6),
            "throughput_tps": round(self.throughput, 2),
            "regions_precomputed": self.regions_precomputed,
            "chase_memo": {
                "hits": self.chase_memo.hits,
                "misses": self.chase_memo.misses,
                "hit_rate": round(self.chase_memo.hit_rate, 4),
            },
            "transfix_memo": {
                "hits": self.transfix_memo.hits,
                "misses": self.transfix_memo.misses,
                "hit_rate": round(self.transfix_memo.hit_rate, 4),
            },
            "suggestion_cache": {
                "hits": self.suggestion_hits,
                "misses": self.suggestion_misses,
                "hit_rate": round(self.suggestion_hit_rate, 4),
            },
            "cache_invalidations": self.cache_invalidations,
            "delta_purges": self.delta_purges,
            "full_drops": self.full_drops,
            "master_version": self.master_version,
            "timings": {
                name: round(value, 6)
                for name, value in sorted(self.timings.items())
            },
            "fixes_by_rule": dict(sorted(self.fixes_by_rule.items())),
            "store_errors": list(self.store_errors),
        }

    def describe(self) -> str:
        lines = [
            f"monitored {self.tuples} tuples in {self.elapsed:.3f}s "
            f"({self.throughput:.1f} tuples/s, {self.chunks} chunks, "
            f"{self.executor} executor, {self.workers} worker(s))",
            f"rounds/tuple: {self.mean_rounds:.2f}  "
            f"completed: {self.completed}  incomplete: {self.incomplete}",
            f"chase memo: {self.chase_memo.hit_rate:.0%} hit "
            f"({self.chase_memo.hits}/{self.chase_memo.lookups})  "
            f"transfix memo: {self.transfix_memo.hit_rate:.0%} hit "
            f"({self.transfix_memo.hits}/{self.transfix_memo.lookups})",
        ]
        if self.suggestion_hits or self.suggestion_misses:
            lines.append(
                f"suggestion cache: {self.suggestion_hit_rate:.0%} hit "
                f"({self.suggestion_hits}/"
                f"{self.suggestion_hits + self.suggestion_misses})"
            )
        if self.timings:
            lines.append(
                "precompute: " + "  ".join(
                    f"{name}: {value:.3f}s"
                    for name, value in sorted(self.timings.items())
                )
            )
        if self.fixes_by_rule:
            top = sorted(
                self.fixes_by_rule.items(), key=lambda kv: (-kv[1], kv[0])
            )
            lines.append(
                "fixes by rule: " + "  ".join(
                    f"{name}: {count}" for name, count in top
                )
            )
        if self.cache_invalidations:
            lines.append(
                f"master updated mid-run: shared caches reconciled "
                f"{self.cache_invalidations} time(s) "
                f"({self.delta_purges} delta purge(s), "
                f"{self.full_drops} full drop(s), "
                f"store version {self.master_version})"
            )
        for message in self.store_errors:
            lines.append(f"STORE FAILURE: {message}")
        for worker, stats in sorted(self.worker_stats.items()):
            lines.append(
                f"  {worker}: {stats['tuples']} tuples in "
                f"{stats['chunks']} chunk(s), chase "
                f"{_rate(stats['chase_hits'], stats['chase_misses']):.0%} "
                f"hit, transfix "
                f"{_rate(stats['transfix_hits'], stats['transfix_misses']):.0%} "
                f"hit"
            )
        return "\n".join(lines)


def _rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


@dataclass
class BatchResult:
    """Sessions (stream order) plus the run's :class:`BatchReport`."""

    sessions: list
    report: BatchReport

    @property
    def final_rows(self) -> list:
        return [session.final for session in self.sessions]

    @property
    def provenance(self) -> list:
        """Per session (stream order), ``{attr: FixProvenance}`` for every
        rule-fixed cell — empty dicts when provenance collection was off."""
        return [session_provenance(session) for session in self.sessions]

    def to_relation(self, schema: RelationSchema) -> Relation:
        """Materialize the repaired stream as a relation."""
        return Relation(schema, self.final_rows)


class _MemoCertainFix(CertainFix):
    """CertainFix with chase/TransFix outcomes memoized per validated pattern.

    Soundness: every rule the chase or TransFix may fire has its premise
    ``X ∪ Xp`` inside the validated set ``Z'`` (and grows ``Z'`` only with
    master-derived values), so both outcomes are pure functions of
    ``(Z', t[Z'])`` given fixed ``(Σ, Dm)`` — the memo key.  "Fixed" is
    enforced by version-stamping: when the master store's version moves,
    the inherited sync hook clears both memo tables along with the base
    engine's regions/BDD/suggest caches.
    """

    def __init__(self, *args, memoize: bool = True, **kwargs):
        super().__init__(*args, **kwargs)
        self._memoize = memoize
        self._chase_memo: dict = {}
        self._transfix_memo: dict = {}
        # Reverse indexes from master probe footprints to memo entries:
        # a journal delta purges exactly the entries whose chase/TransFix
        # run probed the changed row (see repro.repair.invalidation).
        self._chase_footprints = FootprintIndex(self.store.schema)
        self._transfix_footprints = FootprintIndex(self.store.schema)
        # Per-thread footprint-recording store swapped in around miss-path
        # recomputes (thread-local: concurrent sessions record separately).
        self._recording = threading.local()
        self.chase_stats = MemoStats()
        self.transfix_stats = MemoStats()
        self._bdd_lock = None
        # Counter increments are read-modify-write and would drop updates
        # under the thread fan-out; the lock is uncontended (nanoseconds)
        # next to a chase or TransFix run.
        self._stats_lock = threading.Lock()
        # Optional per-thread split of the shared memo counters, keyed by
        # thread ident; enabled by the batch engine's thread fan-out so
        # BatchReport.worker_stats has rows for threads like it does for
        # process workers.  None = disabled (no per-lookup overhead).
        self._thread_stats = None

    # -- per-thread accounting (thread fan-out worker_stats) -------------------

    def enable_thread_stats(self) -> None:
        with self._stats_lock:
            self._thread_stats = {}

    def drain_thread_stats(self) -> dict:
        """Stop per-thread accounting; returns ``{ident: stats}`` in first-
        touch order (the batch engine relabels idents ``thread-<n>``)."""
        with self._stats_lock:
            sink, self._thread_stats = self._thread_stats, None
        return sink or {}

    def _bump_thread(self, key: str) -> None:
        # Caller holds _stats_lock.
        sink = self._thread_stats
        if sink is None:
            return
        ident = threading.get_ident()
        stats = sink.get(ident)
        if stats is None:
            stats = sink[ident] = {
                "chunks": 0, "tuples": 0, "_chunk": None,
                "chase_hits": 0, "chase_misses": 0,
                "transfix_hits": 0, "transfix_misses": 0,
            }
        stats[key] += 1

    def note_thread_session(self, chunk_seq: int) -> None:
        """Count one monitored tuple (and chunk participation) for the
        calling thread."""
        with self._stats_lock:
            sink = self._thread_stats
            if sink is None:
                return
            self._bump_thread("tuples")
            stats = sink[threading.get_ident()]
            if stats["_chunk"] != chunk_seq:
                stats["_chunk"] = chunk_seq
                stats["chunks"] += 1

    # Both hooks run under the base engine's ``_memo_guard`` hold, and the
    # stamp-checked writes below guarantee a worker that computed against
    # the old version cannot re-poison the freshly reconciled tables.

    def _drop_master_caches(self) -> None:
        super()._drop_master_caches()
        self._chase_memo.clear()
        self._transfix_memo.clear()
        self._chase_footprints.clear()
        self._transfix_footprints.clear()

    def _apply_master_deltas(self, deltas) -> bool:
        if not super()._apply_master_deltas(deltas):
            return False
        # Purge soundness: an entry whose recorded probes all miss the
        # changed rows recomputes along the identical probe path to the
        # identical outcome, so only footprint hits need to go.  Every
        # entry must carry a footprint for that argument to hold — if the
        # tables ever disagree (they should not), fall back to the drop.
        rows = [delta.values for delta in deltas]
        for memo, index in (
            (self._chase_memo, self._chase_footprints),
            (self._transfix_memo, self._transfix_footprints),
        ):
            if len(memo) != len(index):
                return False
            for key in index.affected(rows):
                memo.pop(key, None)
                index.discard(key)
        return True

    def _memo_key(self, row: Row, validated: frozenset) -> tuple:
        attrs = tuple(sorted(validated))
        return attrs, row[attrs]

    def _chase_store(self):
        # Miss-path recomputes chase through a footprint-recording wrapper
        # (installed by _record_footprints below); everything else reads
        # the store directly.
        recording = getattr(self._recording, "store", None)
        return recording if recording is not None else self.store

    def _record_footprints(self, compute):
        """Run *compute* (a chase/TransFix recompute) with probe-footprint
        recording; returns ``(result, footprints_or_None)``."""
        if not self._delta_invalidation:
            return compute(), None
        recording = RecordingStore(self.store)
        self._recording.store = recording
        try:
            result = compute()
        finally:
            self._recording.store = None
        return result, recording.footprints

    def _unique(self, row: Row, validated: frozenset) -> bool:
        if not self._memoize:
            return super()._unique(row, validated)
        key = self._memo_key(row, validated)
        stamp = self._master_version
        cached = self._chase_memo.get(key)
        if cached is None:
            with self._stats_lock:
                self.chase_stats.misses += 1
                self._bump_thread("chase_misses")
            obs.inc("repro_chase_memo_total", result="miss")
            cached, footprints = self._record_footprints(
                lambda: super(_MemoCertainFix, self)._unique(row, validated)
            )
            with self._memo_guard:
                if self._master_version == stamp:
                    self._chase_memo[key] = cached
                    if footprints is not None:
                        self._chase_footprints.add(key, footprints)
        else:
            with self._stats_lock:
                self.chase_stats.hits += 1
                self._bump_thread("chase_hits")
            obs.inc("repro_chase_memo_total", result="hit")
        return cached

    def _transfix(self, row: Row, validated: frozenset) -> TransFixResult:
        if not self._memoize:
            return super()._transfix(row, validated)
        key = self._memo_key(row, validated)
        stamp = self._master_version
        entry = self._transfix_memo.get(key)
        if entry is None:
            with self._stats_lock:
                self.transfix_stats.misses += 1
                self._bump_thread("transfix_misses")
            obs.inc("repro_transfix_memo_total", result="miss")
            result, footprints = self._record_footprints(
                lambda: super(_MemoCertainFix, self)._transfix(row, validated)
            )
            fixes = tuple(
                (rule.rhs, result.row[rule.rhs]) for rule, _ in result.applied
            )
            with self._memo_guard:
                if self._master_version == stamp:
                    self._transfix_memo[key] = (
                        fixes, tuple(result.applied), result.lookups,
                    )
                    if footprints is not None:
                        self._transfix_footprints.add(key, footprints)
            return result
        with self._stats_lock:
            self.transfix_stats.hits += 1
            self._bump_thread("transfix_hits")
        obs.inc("repro_transfix_memo_total", result="hit")
        fixes, applied, lookups = entry
        fixed_row = row.with_values(dict(fixes)) if fixes else row
        return TransFixResult(
            row=fixed_row,
            validated=frozenset(validated) | {attr for attr, _ in fixes},
            applied=list(applied),
            lookups=lookups,
        )

    def _next_suggestion(self, cursor, row, validated):
        # The BDD is the only mutable structure shared *across* concurrent
        # sessions mid-flight; serialize its traversal/extension.
        if self._bdd_lock is not None and cursor is not None:
            with self._bdd_lock:
                return super()._next_suggestion(cursor, row, validated)
        return super()._next_suggestion(cursor, row, validated)


def _chunked(iterable: Iterable, size: int):
    iterator = iter(iterable)
    while True:
        chunk = list(itertools.islice(iterator, size))
        if not chunk:
            return
        yield chunk


# -- process-pool fan-out ------------------------------------------------------


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker process needs to rebuild the repair engine.

    Pickled exactly once per worker (through the pool initializer, not per
    chunk): rules and schema by value, the master through a
    :meth:`~repro.engine.store.MasterStore.detach` handle — sqlite
    connections cannot cross a fork/spawn boundary, so the handle re-opens
    the database file in the worker, while an in-memory master ships its
    rows by value.  ``build()`` rehydrates the engine: certain regions,
    master probe indexes and the memo tables are rebuilt per worker against
    the handle's version stamp, so the parent's and every worker's caches
    sit on one shared version stream.
    """

    rules: tuple
    schema: RelationSchema
    store_handle: object
    use_bdd: bool
    memoize: bool
    engine_options: tuple  # sorted (name, value) pairs, picklable

    def build(self) -> "_MemoCertainFix":
        store = self.store_handle.reattach()
        engine = _MemoCertainFix(
            list(self.rules), store, self.schema,
            use_bdd=self.use_bdd, memoize=self.memoize,
            **dict(self.engine_options),
        )
        engine.regions  # noqa: B018 — precompute before the first chunk
        return engine


#: The rehydrated engine of this worker process (set by the initializer).
_WORKER_ENGINE = None


def _process_worker_init(spec: EngineSpec) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = spec.build()


def _warm_chunk_probes(engine, pairs) -> float:
    """Batch-probe every rule key of the chunk before monitoring starts.

    Only called for stores with round-trip probe cost
    (``supports_batched_probes``): one ``IN``-clause plan per rule fills
    the probe cache with exactly the keys the chase/TransFix loops are
    about to ask for, amortizing what would otherwise be one SELECT per
    (tuple, rule).  Returns the seconds spent warming (the chunk's share
    of ``BatchReport.timings["probe_warmup_s"]``).
    """
    started = time.perf_counter()
    store = engine.store
    for rule in engine.rules:
        keys = {row[rule.lhs] for row, _ in pairs}
        if keys:
            store.probe_many(rule.lhs_m, keys)
    return time.perf_counter() - started


def _process_worker_chunk(task: tuple) -> dict:
    """Monitor one chunk in this worker; returns sessions + stats deltas.

    ``task`` is ``(seq, pairs, version, snapshot, deltas)``.  *version* is
    the parent store's version when the chunk was dispatched; when it
    differs from this worker's store the master mutated mid-batch, and the
    worker resyncs before monitoring — preferably by adopting the shipped
    journal *deltas* (which keeps the worker store's own journal
    contiguous, so the engine resync right after can purge per-key),
    falling back to the shipped row *snapshot* for in-memory masters or
    the shared database file for sqlite (*snapshot* is None) — so a
    mid-batch master update still invalidates every worker's
    version-stamped caches.
    """
    seq, pairs, version, snapshot, deltas = task
    engine = _WORKER_ENGINE
    store = engine.store
    invalidations0 = engine.cache_invalidations
    delta_purges0 = engine.delta_purges
    full_drops0 = engine.full_drops
    # Strictly newer only: tasks are dispatched through one FIFO queue, so
    # dispatch versions arrive monotonically; the guard is belt-and-braces
    # against ever "syncing" a worker backwards.
    if version > store.version:
        if not (deltas is not None and store.adopt_deltas(deltas, version)):
            if snapshot is not None:
                store.reset_rows(snapshot, version)
            else:
                store.sync_version(version)
        engine.resync_master()
    warm_s = 0.0
    if store.supports_batched_probes:
        warm_s = _warm_chunk_probes(engine, pairs)
    chase0 = engine.chase_stats.snapshot()
    transfix0 = engine.transfix_stats.snapshot()
    suggestion = engine.cache_stats
    sugg_hits0 = suggestion.hits if suggestion is not None else 0
    sugg_misses0 = suggestion.misses if suggestion is not None else 0

    sessions = [engine.fix(row, oracle) for row, oracle in pairs]

    suggestion = engine.cache_stats
    return {
        "seq": seq,
        "worker": f"pid-{os.getpid()}",
        "sessions": sessions,
        "chase": (
            engine.chase_stats.hits - chase0.hits,
            engine.chase_stats.misses - chase0.misses,
        ),
        "transfix": (
            engine.transfix_stats.hits - transfix0.hits,
            engine.transfix_stats.misses - transfix0.misses,
        ),
        "suggestions": (
            (suggestion.hits - sugg_hits0) if suggestion is not None else 0,
            (suggestion.misses - sugg_misses0) if suggestion is not None else 0,
        ),
        "invalidations": engine.cache_invalidations - invalidations0,
        "delta_purges": engine.delta_purges - delta_purges0,
        "full_drops": engine.full_drops - full_drops0,
        "warm_s": warm_s,
        # Ack: lets the parent stop attaching snapshots once every worker
        # has confirmed the post-mutation stamp.
        "store_version": store.version,
    }


class BatchRepairEngine:
    """Monitor thousands of dirty tuples through CertainFix at throughput.

    Parameters
    ----------
    rules, master, schema:
        As for :class:`CertainFix`: *master* is any
        :class:`~repro.engine.store.MasterStore` (in-memory or sqlite) or a
        plain relation, and probe indexes for every rule key are forced at
        construction.  Mutating the store between (or during) runs bumps
        its version; all shared caches rebuild lazily before the next
        monitored tuple, and the run's :class:`BatchReport` counts the
        rebuilds.
    regions:
        Precomputed certain-region candidates; computed (once) at
        construction when omitted — never per tuple, recomputed only when
        the store version moves.
    use_bdd:
        Share a Suggest⁺ BDD cache across all sessions (default on: this is
        the batch workload the cache was designed for).
    memoize:
        Reuse chase / TransFix outcomes across tuples with the same
        validated pattern (default on).
    chunk_size:
        How many stream elements to pull per execution chunk.
    executor:
        ``"thread"`` (default) fans chunks out to worker threads sharing
        one engine and all caches; ``"process"`` fans chunks out to a pool
        of worker processes, each rehydrating its own engine from a
        picklable :class:`EngineSpec` (see the module docstring for the
        decision rule: I/O-bound oracle → threads, CPU-bound → processes).
        Process mode requires rows and oracles to be picklable, and a
        sqlite master to be file-backed (``path=...``), since its handle
        is re-opened per worker.
    concurrency:
        Workers per chunk (1 = sequential for the thread executor).
        Threads share the read-only master state and all caches; processes
        each hold their own copy, so per-run reports aggregate per-worker
        stats instead (``BatchReport.worker_stats``).
    mp_start_method:
        Process executor only: the :mod:`multiprocessing` start method
        (``"fork"``, ``"spawn"``, ``"forkserver"``; None = platform
        default).
    on_incomplete:
        ``"keep"`` returns truncated sessions (``completed=False``) in
        place; ``"raise"`` surfaces the first one as :class:`IncompleteFix`.
    preflight:
        Lint gate in front of every precompute (regions, the BDD):
        ``"error"`` (default) raises
        :class:`~repro.lint.diagnostics.LintError` when the rule program
        has error-level structural findings, ``"warn"`` prints findings to
        stderr and continues, ``"off"`` skips linting entirely, and
        ``"certify"`` additionally runs the exact master-aware
        certification passes (E205/W206/I208) against the master store —
        refusing provably inconsistent programs before any repair runs.
    engine_options:
        Forwarded to the underlying :class:`CertainFix` (``max_rounds``,
        ``max_revisions``, ``validate_uniqueness``, ...).

    A process pool is created lazily on the first ``run()`` and reused
    across runs (workers keep their warmed caches); call :meth:`close` (or
    use the engine as a context manager) to shut it down deterministically.
    """

    def __init__(
        self,
        rules: Sequence,
        master: Relation,
        schema: RelationSchema,
        regions: list = None,
        use_bdd: bool = True,
        memoize: bool = True,
        chunk_size: int = 256,
        executor: str = "thread",
        concurrency: int = 1,
        mp_start_method: str = None,
        on_incomplete: str = "keep",
        preflight: str = "error",
        **engine_options,
    ):
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        if concurrency < 1:
            raise ValueError(f"concurrency must be >= 1, got {concurrency}")
        if executor not in ("thread", "process"):
            raise ValueError(
                f"executor must be 'thread' or 'process', got {executor!r}"
            )
        if on_incomplete not in ("keep", "raise"):
            raise ValueError(
                f"on_incomplete must be 'keep' or 'raise', "
                f"got {on_incomplete!r}"
            )
        # Lint BEFORE any precompute: a rule program with error-level
        # findings would crash (or silently corrupt) the region/BDD build
        # below; surface the diagnostics while they are still cheap.
        from repro.lint import preflight as lint_preflight

        lint_preflight(
            rules, schema,
            master_schema=as_master_store(master).schema,
            mode=preflight, context="BatchRepairEngine rule program",
            master=master,
        )
        self.chunk_size = chunk_size
        self.executor = executor
        self.concurrency = concurrency
        self.mp_start_method = mp_start_method
        self.on_incomplete = on_incomplete
        # Non-BDD streams get the suggest memo (ROADMAP follow-up): same
        # validated-pattern key as the chase/TransFix memos, same versioned
        # invalidation.  With the BDD on, the cursor path serves suggestions
        # and the memo would be dead weight.
        engine_options.setdefault("memoize_suggest", memoize and not use_bdd)
        # Provenance records are a handful of tuples per monitored tuple —
        # cheap next to a chase — and the batch report's fixes_by_rule
        # rollup needs them, so the batch engine collects by default.
        engine_options.setdefault("collect_provenance", True)
        self._use_bdd = use_bdd
        self._memoize = memoize
        self._engine_options = dict(engine_options)
        self._engine = _MemoCertainFix(
            rules, master, schema,
            regions=regions, use_bdd=use_bdd, memoize=memoize,
            **engine_options,
        )
        if executor == "thread" and concurrency > 1 and use_bdd:
            self._engine._bdd_lock = threading.Lock()
        self._pool = None
        self._pool_version = None  # newest version every worker is known
        #                            to hold (starts at the spec's stamp)
        self._worker_versions = {}  # worker label -> last acked version
        self._snapshot_cache = None  # (version, rows) for in-memory resync
        # Precompute everything shareable up front so run() never pays
        # per-session setup: regions (CertainFix builds master indexes in
        # its own constructor already).  Timed: every run's report carries
        # the construction cost it amortizes (timings["region_precompute_s"]).
        started = time.perf_counter()
        self._engine.regions  # noqa: B018 — forces the (cached) computation
        self._region_precompute_s = time.perf_counter() - started

    @property
    def engine(self) -> CertainFix:
        """The shared underlying CertainFix engine (caches included)."""
        return self._engine

    @property
    def store(self):
        """The engine's :class:`~repro.engine.store.MasterStore`.

        Mutations made through it (``insert`` / ``delete`` / ``update``)
        are picked up before the next monitored tuple.
        """
        return self._engine.store

    # -- process-pool lifecycle ------------------------------------------------

    def _make_spec(self) -> EngineSpec:
        return EngineSpec(
            rules=tuple(self._engine.rules),
            schema=self._engine.schema,
            store_handle=self._engine.store.detach(),
            use_bdd=self._use_bdd,
            memoize=self._memoize,
            engine_options=tuple(sorted(self._engine_options.items())),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            spec = self._make_spec()
            context = multiprocessing.get_context(self.mp_start_method)
            self._pool = ProcessPoolExecutor(
                max_workers=self.concurrency,
                mp_context=context,
                initializer=_process_worker_init,
                initargs=(spec,),
            )
            self._pool_version = spec.store_handle.version
            self._worker_versions = {}
        return self._pool

    def close(self) -> None:
        """Shut the process pool down (no-op for the thread executor).

        The engine stays usable: the next process run builds a fresh pool
        (workers re-warm from the then-current master state).
        """
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._pool_version = None
            self._worker_versions = {}

    def __enter__(self) -> "BatchRepairEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _task_for(self, seq: int, chunk: list) -> tuple:
        """Build one worker task, attaching the master-resync payload.

        Every task carries the parent store's current version.  When it is
        newer than ``_pool_version`` (the newest stamp every worker is
        known to hold) and the backend does not share storage across
        processes (in-memory masters), the task also ships a row snapshot
        so whichever worker picks it up can rebuild — workers skip the
        resync when their stamp already matches, and once all
        ``concurrency`` workers have acked the new stamp through their
        chunk results, ``_pool_version`` catches up and snapshots stop
        shipping (a late-spawning worker rehydrates from the original
        spec, so the ack must come from every worker, not just the ones
        seen so far).
        """
        store = self._engine.store
        version = store.version
        snapshot = None
        deltas = None
        if version != self._pool_version:
            acked = sum(
                1 for v in self._worker_versions.values() if v >= version
            )
            if acked >= self.concurrency:
                self._pool_version = version
            else:
                # Ship the journal gap alongside: a worker that can adopt
                # the deltas resyncs per-key (and its engine then purges
                # per-key too) instead of replacing its whole store state.
                # None when the journal cannot vouch for the gap — workers
                # then use the snapshot / shared-file fallback.
                deltas = store.deltas_since(self._pool_version)
                if not store.shares_storage_across_processes:
                    if self._snapshot_cache is None or \
                            self._snapshot_cache[0] != version:
                        self._snapshot_cache = (version, tuple(store))
                    snapshot = self._snapshot_cache[1]
        return (seq, chunk, version, snapshot, deltas)

    # -- execution -------------------------------------------------------------

    def _safe_store_version(self) -> int:
        """The store version for reporting — never raises.

        Reading a remote store's version can itself need the network; a
        report built *because* the store died must not die the same way.
        """
        try:
            return self._engine.store.version
        except StoreError:
            return self._engine._master_version

    def run(self, pairs: Iterable, progress=None) -> BatchResult:
        """Monitor a stream of ``(dirty_row, oracle)`` pairs.

        The stream is consumed lazily in chunks of ``chunk_size``; sessions
        come back in stream order regardless of ``executor`` or
        ``concurrency`` (process chunks carry sequence numbers and are
        merged in submission order).

        *progress* is an optional :class:`repro.obs.ProgressReporter`: it is
        advanced once per completed chunk with the running cache hit rates
        and per-worker tuple counts, and always receives a final
        :meth:`~repro.obs.ProgressReporter.finish` — including after a
        mid-run store failure, so the last heartbeat reflects everything
        that completed.
        """
        if self.executor == "process":
            return self._run_process(pairs, progress)
        return self._run_threaded(pairs, progress)

    def _run_process(self, pairs: Iterable, progress=None) -> BatchResult:
        """Fan chunks out to the worker processes; merge in stream order."""
        pool = self._ensure_pool()
        engine = self._engine
        sessions: list = []
        worker_stats: dict = {}
        totals = {
            "chase": [0, 0], "transfix": [0, 0], "suggestions": [0, 0],
            "invalidations": 0, "delta_purges": 0, "full_drops": 0,
            "warm_s": 0.0,
        }

        def hit_rates() -> dict:
            rates = {
                "chase": _rate(*totals["chase"]),
                "transfix": _rate(*totals["transfix"]),
            }
            if totals["suggestions"][0] or totals["suggestions"][1]:
                rates["suggest"] = _rate(*totals["suggestions"])
            return rates

        def worker_tuples() -> dict:
            return {
                worker: stats["tuples"]
                for worker, stats in worker_stats.items()
            }

        def consume(future) -> None:
            result = future.result()
            chunk_sessions = result["sessions"]
            for offset, session in enumerate(chunk_sessions):
                if not session.completed and self.on_incomplete == "raise":
                    raise IncompleteFix(session, index=len(sessions) + offset)
            sessions.extend(chunk_sessions)
            self._worker_versions[result["worker"]] = max(
                result["store_version"],
                self._worker_versions.get(result["worker"], 0),
            )
            for name in ("chase", "transfix", "suggestions"):
                totals[name][0] += result[name][0]
                totals[name][1] += result[name][1]
            totals["invalidations"] += result["invalidations"]
            totals["delta_purges"] += result["delta_purges"]
            totals["full_drops"] += result["full_drops"]
            totals["warm_s"] += result["warm_s"]
            stats = worker_stats.setdefault(result["worker"], {
                "chunks": 0, "tuples": 0,
                "chase_hits": 0, "chase_misses": 0,
                "transfix_hits": 0, "transfix_misses": 0,
                "suggestion_hits": 0, "suggestion_misses": 0,
            })
            stats["chunks"] += 1
            stats["tuples"] += len(chunk_sessions)
            stats["chase_hits"] += result["chase"][0]
            stats["chase_misses"] += result["chase"][1]
            stats["transfix_hits"] += result["transfix"][0]
            stats["transfix_misses"] += result["transfix"][1]
            stats["suggestion_hits"] += result["suggestions"][0]
            stats["suggestion_misses"] += result["suggestions"][1]
            if progress is not None:
                progress.advance(
                    len(chunk_sessions),
                    rates=hit_rates(),
                    workers=worker_tuples(),
                )

        # Keep a bounded window of chunks in flight: enough to feed every
        # worker with one chunk of lookahead, without materializing an
        # unbounded stream in the submission queue.
        max_inflight = 2 * self.concurrency
        pending: deque = deque()
        chunks = 0
        store_failure = None
        started = time.perf_counter()
        try:
            for chunk in _chunked(pairs, self.chunk_size):
                task = self._task_for(chunks, chunk)
                chunks += 1
                pending.append(pool.submit(_process_worker_chunk, task))
                if len(pending) >= max_inflight:
                    consume(pending.popleft())
            while pending:
                consume(pending.popleft())
        except StoreError as exc:
            # Infrastructure died mid-run (a worker's master connection,
            # usually).  Report what completed and re-raise with the
            # report attached — see BatchReport.store_errors.
            store_failure = exc
            for future in pending:
                future.cancel()
        elapsed = time.perf_counter() - started
        if progress is not None:
            progress.finish(rates=hit_rates(), workers=worker_tuples())

        report = BatchReport(
            tuples=len(sessions),
            completed=sum(1 for s in sessions if s.completed),
            incomplete=sum(1 for s in sessions if not s.completed),
            rounds=sum(s.round_count for s in sessions),
            chunks=chunks,
            elapsed=elapsed,
            concurrency=self.concurrency,
            chunk_size=self.chunk_size,
            executor="process",
            workers=self.concurrency,
            worker_stats=worker_stats,
            regions_precomputed=len(engine.regions),
            chase_memo=MemoStats(*totals["chase"]),
            transfix_memo=MemoStats(*totals["transfix"]),
            suggestion_hits=totals["suggestions"][0],
            suggestion_misses=totals["suggestions"][1],
            cache_invalidations=totals["invalidations"],
            delta_purges=totals["delta_purges"],
            full_drops=totals["full_drops"],
            master_version=self._safe_store_version(),
            timings={
                "region_precompute_s": self._region_precompute_s,
                "probe_warmup_s": totals["warm_s"],
            },
            fixes_by_rule=count_fixes_by_rule(sessions),
            store_errors=(
                [str(store_failure)] if store_failure is not None else []
            ),
        )
        if store_failure is not None:
            store_failure.report = report
            raise store_failure
        return BatchResult(sessions=sessions, report=report)

    def _run_threaded(self, pairs: Iterable, progress=None) -> BatchResult:
        engine = self._engine
        chase_before = engine.chase_stats.snapshot()
        transfix_before = engine.transfix_stats.snapshot()
        invalidations_before = engine.cache_invalidations
        delta_purges_before = engine.delta_purges
        full_drops_before = engine.full_drops
        bdd_before = engine.cache_stats
        bdd_hits0 = bdd_before.hits if bdd_before is not None else 0
        bdd_misses0 = bdd_before.misses if bdd_before is not None else 0

        def hit_rates() -> dict:
            rates = {
                "chase": engine.chase_stats.delta(chase_before).hit_rate,
                "transfix": engine.transfix_stats.delta(
                    transfix_before
                ).hit_rate,
            }
            sugg = engine.cache_stats
            if sugg is not None:
                hits = sugg.hits - bdd_hits0
                misses = sugg.misses - bdd_misses0
                if hits or misses:
                    rates["suggest"] = _rate(hits, misses)
            return rates

        sessions: list = []
        worker_stats: dict = {}
        chunks = 0
        store_failure = None
        pool = (
            ThreadPoolExecutor(max_workers=self.concurrency)
            if self.concurrency > 1
            else None
        )
        if pool is not None:
            # Split the shared memo counters by thread, so concurrent
            # thread runs report per-worker rows just like process runs.
            engine.enable_thread_stats()
        started = time.perf_counter()
        try:
            for chunk in _chunked(pairs, self.chunk_size):
                chunks += 1
                if pool is not None:
                    def monitored(pair, _seq=chunks):
                        session = engine.fix(*pair)
                        engine.note_thread_session(_seq)
                        return session

                    chunk_sessions = list(pool.map(monitored, chunk))
                else:
                    chunk_sessions = [
                        engine.fix(row, oracle) for row, oracle in chunk
                    ]
                for offset, session in enumerate(chunk_sessions):
                    if not session.completed and self.on_incomplete == "raise":
                        raise IncompleteFix(
                            session, index=len(sessions) + offset
                        )
                sessions.extend(chunk_sessions)
                if progress is not None:
                    progress.advance(len(chunk_sessions), rates=hit_rates())
        except StoreError as exc:
            # Infrastructure died mid-run; report what completed and
            # re-raise with the report attached (BatchReport.store_errors).
            store_failure = exc
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
                # Labels are assigned in first-lookup order, so they are
                # stable for a given interleaving but not across runs.
                for index, stats in enumerate(
                    engine.drain_thread_stats().values(), start=1
                ):
                    stats.pop("_chunk", None)
                    worker_stats[f"thread-{index}"] = stats
        elapsed = time.perf_counter() - started
        if progress is not None:
            progress.finish(
                rates=hit_rates(),
                workers={
                    worker: stats["tuples"]
                    for worker, stats in worker_stats.items()
                } or None,
            )

        bdd_after = engine.cache_stats
        report = BatchReport(
            tuples=len(sessions),
            completed=sum(1 for s in sessions if s.completed),
            incomplete=sum(1 for s in sessions if not s.completed),
            rounds=sum(s.round_count for s in sessions),
            chunks=chunks,
            elapsed=elapsed,
            concurrency=self.concurrency,
            chunk_size=self.chunk_size,
            executor="thread",
            workers=self.concurrency,
            worker_stats=worker_stats,
            regions_precomputed=len(engine.regions),
            chase_memo=engine.chase_stats.delta(chase_before),
            transfix_memo=engine.transfix_stats.delta(transfix_before),
            suggestion_hits=(
                bdd_after.hits - bdd_hits0 if bdd_after is not None else 0
            ),
            suggestion_misses=(
                bdd_after.misses - bdd_misses0 if bdd_after is not None else 0
            ),
            cache_invalidations=(
                engine.cache_invalidations - invalidations_before
            ),
            delta_purges=engine.delta_purges - delta_purges_before,
            full_drops=engine.full_drops - full_drops_before,
            master_version=self._safe_store_version(),
            timings={
                "region_precompute_s": self._region_precompute_s,
                "probe_warmup_s": 0.0,
            },
            fixes_by_rule=count_fixes_by_rule(sessions),
            store_errors=(
                [str(store_failure)] if store_failure is not None else []
            ),
        )
        if store_failure is not None:
            store_failure.report = report
            raise store_failure
        return BatchResult(sessions=sessions, report=report)

    def run_dirty(self, dirty_tuples: Iterable, progress=None) -> BatchResult:
        """Monitor a :class:`repro.datasets.dirty.DirtyDataset` (or any
        iterable of objects with ``dirty``/``clean`` rows) against simulated
        truthful users, as the paper's experiments do."""
        return self.run(
            ((dt.dirty, SimulatedUser(dt.clean)) for dt in dirty_tuples),
            progress=progress,
        )

    def run_csv(
        self,
        dirty_path,
        clean_path=None,
        oracle_factory: Callable = None,
        progress=None,
    ) -> BatchResult:
        """Stream a dirty CSV file through the engine (constant memory).

        Exactly one feedback source must be provided: *clean_path*, a CSV
        aligned row-for-row with the dirty file whose values play the
        truthful simulated user, or *oracle_factory*, a callable mapping a
        dirty :class:`Row` to an oracle (with ``executor="process"`` the
        produced oracles must be picklable).  Misaligned dirty/clean files
        raise ``ValueError`` naming both paths and row counts rather than
        silently truncating to the shorter stream.
        """
        if (clean_path is None) == (oracle_factory is None):
            raise ValueError(
                "provide exactly one of clean_path or oracle_factory"
            )
        schema = self._engine.schema
        dirty = stream_rows_from_csv(dirty_path, schema=schema)
        if clean_path is not None:
            clean = stream_rows_from_csv(clean_path, schema=schema)
            pairs = _aligned_pairs(dirty, clean, dirty_path, clean_path)
        else:
            pairs = ((d, oracle_factory(d)) for d in dirty)
        return self.run(pairs, progress=progress)


def _aligned_pairs(dirty, clean, dirty_path, clean_path):
    """Zip the two streams strictly — never ``zip``'s silent truncation.

    A clean file shorter than the dirty one would silently leave the tail
    of the stream unmonitored (and a longer one would silently ignore
    ground truth), so when either stream ends first the other is drained
    to count it, and a ``ValueError`` naming both paths and both row
    counts surfaces through :meth:`BatchRepairEngine.run_csv`.
    """
    _end = object()
    dirty_rows, clean_rows = iter(dirty), iter(clean)
    index = 0
    while True:
        d = next(dirty_rows, _end)
        c = next(clean_rows, _end)
        if d is _end and c is _end:
            return
        if (d is _end) or (c is _end):
            # Drain the longer stream so the error can name both totals.
            longer = clean_rows if d is _end else dirty_rows
            surplus = 1 + sum(1 for _ in longer)
            dirty_count = index if d is _end else index + surplus
            clean_count = index if c is _end else index + surplus
            raise ValueError(
                f"dirty and clean CSVs are not aligned row-for-row: "
                f"{dirty_path} has {dirty_count} data rows but "
                f"{clean_path} has {clean_count}"
            )
        yield d, SimulatedUser(c)
        index += 1
