"""Algorithm CertainFix / CertainFix⁺ (Sect. 5, Fig. 3).

The interactive driver: pick the highest-quality precomputed certain region
as the first suggestion; each round, ask the user to assert a suggested
attribute set, validate that the asserted values lead to a unique fix
(PTIME — the asserted tuple is a concrete pattern), run TransFix to fix and
validate everything the rules entail, and compute the next suggestion until
every attribute of the tuple is validated.

``CertainFix⁺`` is the same driver with the BDD suggestion cache
(:class:`repro.repair.bdd.SuggestionCache`) replacing fresh Suggest calls.

Master data is reached exclusively through the
:class:`~repro.engine.store.MasterStore` seam — the Sect. 5.1 hash table
behind ``probe`` — so in-memory and out-of-core backends are
interchangeable.  All derived state (certain regions, the BDD, the suggest
memo, pattern probes) is stamped with the store version it was computed
against and rebuilt lazily when the master mutates.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.analysis.dependency_graph import DependencyGraph
from repro.core.fixes import chase
from repro.engine.schema import RelationSchema
from repro.engine.store import as_master_store
from repro.engine.tuples import Row
from repro.obs import FixProvenance
from repro.repair.bdd import CacheStats, SuggestionCache
from repro.repair.invalidation import (
    RecordingStore,
    RegionGuard,
    patch_pattern_cache,
)
from repro.repair.region_search import comp_c_region
from repro.repair.suggest import Suggestion, suggest
from repro.repair.transfix import transfix


@dataclass
class RoundLog:
    """What happened in one interaction round."""

    index: int
    suggested: tuple
    asserted: tuple
    corrected_by_user: tuple
    fixed_by_rules: tuple
    suggestion_source: str
    elapsed: float
    revisions: int = 0
    row_after: object = None
    validated_after: frozenset = frozenset()
    #: Per-cell :class:`repro.obs.FixProvenance` records for the rule
    #: applications of this round (empty unless the engine was built with
    #: ``collect_provenance=True``).
    provenance: tuple = ()


@dataclass
class FixSession:
    """Outcome of monitoring one input tuple."""

    final: Row
    validated: frozenset
    rounds: list = field(default_factory=list)
    completed: bool = False

    @property
    def round_count(self) -> int:
        return len(self.rounds)

    @property
    def attrs_fixed_by_rules(self) -> frozenset:
        out = set()
        for r in self.rounds:
            out.update(r.fixed_by_rules)
        return frozenset(out)

    @property
    def attrs_asserted_by_user(self) -> frozenset:
        out = set()
        for r in self.rounds:
            out.update(r.asserted)
        return frozenset(out)

    @property
    def attrs_corrected_by_user(self) -> frozenset:
        out = set()
        for r in self.rounds:
            out.update(r.corrected_by_user)
        return frozenset(out)

    @property
    def total_elapsed(self) -> float:
        return sum(r.elapsed for r in self.rounds)

    def state_after_round(self, k: int):
        """The tuple and user-asserted attribute set after round *k*.

        Rounds beyond the session's last repeat the final state (the tuple
        was already fully validated), which is how the per-round recall
        curves of Fig. 9 are read.
        """
        if not self.rounds or k < 1:
            return self.final, frozenset()
        index = min(k, len(self.rounds)) - 1
        row = self.rounds[index].row_after
        asserted = set()
        for r in self.rounds[: index + 1]:
            asserted.update(r.asserted)
        return row, frozenset(asserted)


class ValidationFailed(RuntimeError):
    """The user's assertions kept conflicting with the rules and master data."""


class IncompleteFix(RuntimeError):
    """A session exhausted ``max_rounds`` without validating every attribute.

    Raised by :meth:`CertainFix.fix_stream` (and the batch engine) under the
    ``on_incomplete="raise"`` policy; carries the truncated session so the
    caller can inspect how far monitoring got.
    """

    def __init__(self, session: "FixSession", index: int = None):
        missing = sorted(
            set(session.final.schema.attributes) - set(session.validated)
        )
        position = f" (stream position {index})" if index is not None else ""
        super().__init__(
            f"monitoring stopped after {session.round_count} rounds with "
            f"{missing} still unvalidated{position}"
        )
        self.session = session
        self.index = index


class CertainFix:
    """The interactive monitoring engine.

    Parameters
    ----------
    rules, master, schema:
        The rule set Σ, the master data ``Dm`` — a
        :class:`~repro.engine.store.MasterStore` or a plain relation
        (adapted on entry) — and the input schema ``R``.
    regions:
        Precomputed certain-region candidates (output of
        :func:`repro.repair.region_search.comp_c_region`).  Computed once on
        first use when omitted; index 0 (highest quality) seeds round 1.
        Recomputed from the store whenever its version moves: regions are
        valid only for the master state they were derived from.
    use_bdd:
        Enable the Suggest⁺ cache — this is CertainFix⁺.
    memoize_suggest:
        Cache non-BDD ``suggest()`` results on ``(Z', t[Z'])`` (sound:
        Suggest is a pure function of the validated pattern for fixed
        ``(Σ, Dm)``, and the memo is dropped when the store version moves).
        Hit rates surface through :attr:`cache_stats`.  Ignored during
        rounds served by the BDD cursor.
    initial_region_rank:
        Which precomputed region to start from (0 = CRHQ; higher ranks give
        the CRMQ comparison of Exp-1(2)).
    delta_invalidation:
        Consume the store's delta journal on master mutation: purge only
        the cache entries a changed row can touch and keep everything
        else stamped valid, falling back to the full drop whenever the
        journal cannot vouch for the gap (window overflow, bulk loads,
        deletes the region guard will not absorb).  Off means every
        version move performs the historical full teardown — the
        reference behaviour the equivalence fuzz compares against.
    """

    def __init__(
        self,
        rules: Sequence,
        master,
        schema: RelationSchema,
        regions: list = None,
        use_bdd: bool = False,
        memoize_suggest: bool = False,
        initial_region_rank: int = 0,
        max_rounds: int = 12,
        max_revisions: int = 3,
        validate_uniqueness: bool = True,
        suggest_validate_patterns: int = 48,
        collect_provenance: bool = False,
        delta_invalidation: bool = True,
    ):
        self.rules = list(rules)
        self.store = as_master_store(master)
        # ``master`` stays as an alias of the store: every legacy call site
        # (and the analyses this engine delegates to) reads through it.
        self.master = self.store
        self.schema = schema
        self.graph = DependencyGraph(self.rules)
        self.max_rounds = max_rounds
        self.max_revisions = max_revisions
        self.validate_uniqueness = validate_uniqueness
        self.suggest_validate_patterns = suggest_validate_patterns
        self._regions = regions
        self._initial_rank = initial_region_rank
        self._pattern_cache: dict = {}
        self._cache = (
            SuggestionCache(
                self.rules, self.store, schema,
                validate_patterns=suggest_validate_patterns,
            )
            if use_bdd
            else None
        )
        self._suggest_memo: dict = {} if memoize_suggest else None
        self._suggest_stats = CacheStats() if memoize_suggest else None
        # Guards every version-stamped structure (the version stamp itself,
        # the suggest memo, and subclass memo tables) against the thread
        # fan-out: teardown happens under the guard, and memo writes are
        # stamp-checked under it so an outcome computed against an old
        # master version can never re-poison a freshly cleared cache.
        # Re-entrant: subclasses extend the teardown within the same hold.
        self._memo_guard = threading.RLock()
        self.cache_invalidations = 0
        self._delta_invalidation = delta_invalidation
        self._region_guard = None
        #: How many master-version moves were absorbed via per-key delta
        #: purges vs. how many fell back to the historical full drop.
        self.delta_purges = 0
        self.full_drops = 0
        self.collect_provenance = collect_provenance
        # Position of each rule object in Σ, for provenance records.  Keyed
        # by identity: equal-but-distinct duplicates must keep their own
        # indices, and TransFix applies exactly these objects.
        self._rule_index = {id(rule): i for i, rule in enumerate(self.rules)}
        # Force master indexes for every rule key up front so the first
        # monitored tuple does not pay index-build latency.
        for rule in self.rules:
            self.store.ensure_index(rule.lhs_m)
        self._master_version = self.store.version

    # -- precomputation ----------------------------------------------------------

    @property
    def regions(self) -> list:
        if self._regions is None:
            with obs.time_block("repro_region_precompute_seconds"):
                if self._delta_invalidation:
                    # Record the build's master footprint so the region
                    # guard can later prove a delta batch leaves the
                    # rebuild outcome unchanged.
                    recording = RecordingStore(self.store)
                    record: list = []
                    self._regions = comp_c_region(
                        self.rules, recording, self.schema, record=record
                    )
                    self._region_guard = RegionGuard(
                        self.rules,
                        self.schema,
                        self.store,
                        recording.footprints,
                        record,
                    )
                else:
                    self._regions = comp_c_region(
                        self.rules, self.store, self.schema
                    )
            if not self._regions:
                raise ValueError(
                    "no certain region exists for (Σ, Dm); CertainFix needs "
                    "at least one to seed its first suggestion"
                )
        return self._regions

    @property
    def initial_region(self):
        regions = self.regions
        rank = min(self._initial_rank, len(regions) - 1)
        return regions[rank]

    @property
    def cache_stats(self):
        """Suggestion-cache accounting: the BDD's when enabled, else the
        non-BDD suggest memo's, else ``None``."""
        if self._cache is not None:
            return self._cache.stats
        return self._suggest_stats

    # -- master-version synchronisation -----------------------------------------

    def _sync_master_version(self) -> bool:
        """Reconcile version-stamped state when the master store moved.

        Checked on every monitored tuple (an integer compare when nothing
        changed).  Regions, the Suggest⁺ BDD, the suggest memo and the
        pattern-probe cache were all computed against a concrete master
        state; any of them may certify fixes that are no longer certain
        after an insert/delete/update.  With ``delta_invalidation`` on,
        the store's delta journal names the changed rows and
        :meth:`_apply_master_deltas` purges surgically; whenever the
        journal cannot vouch for the gap (``deltas_since`` returns
        ``None``) or a delta resists surgical treatment, the historical
        full drop runs instead — so correctness never depends on the
        delta path succeeding.
        """
        version = self.store.version
        if version == self._master_version:
            return False
        with self._memo_guard:
            if version == self._master_version:
                return False  # another worker already performed the teardown
            deltas = (
                self.store.deltas_since(self._master_version)
                if self._delta_invalidation
                else None
            )
            if deltas and self._apply_master_deltas(deltas):
                self.delta_purges += 1
                counter = "repro_store_delta_purge_total"
            else:
                self._drop_master_caches()
                self.full_drops += 1
                counter = "repro_store_full_drop_total"
            self._master_version = version
            self.cache_invalidations += 1
        obs.inc(counter)
        obs.inc("repro_cache_invalidations_total")
        return True

    def _drop_master_caches(self) -> None:
        """The historical full teardown: every derived cache rebuilds
        lazily.  Subclasses extend this to cover their own caches.
        Runs under ``_memo_guard``."""
        self._regions = None
        self._region_guard = None
        self._pattern_cache.clear()
        if self._suggest_memo is not None:
            self._suggest_memo.clear()
        if self._cache is not None:
            self._cache.invalidate()

    def _apply_master_deltas(self, deltas) -> bool:
        """Purge per-key for a journal delta batch; True on success.

        Regions survive iff the :class:`RegionGuard` proves a rebuild
        would reproduce them; per-rule pattern caches (the engine's and
        the BDD's) are patched row by row; the suggest memo is cleared
        (suggestions embed witness sweeps — retention would not be
        bit-identical); BDD nodes are retained because ``_valid_for``
        revalidates every cached suggestion against the live master.
        Subclasses extend this with footprint-indexed memo purges.
        Runs under ``_memo_guard``; a False return means the caller must
        fall back to :meth:`_drop_master_caches`.
        """
        rows = [Row(self.store.schema, delta.values) for delta in deltas]
        if self._regions is not None:
            guard = self._region_guard
            if guard is None or not guard.absorb(deltas, self.store):
                self._regions = None
                self._region_guard = None
        patch_pattern_cache(self._pattern_cache, self.rules, deltas, rows)
        if self._cache is not None:
            patch_pattern_cache(
                self._cache._pattern_cache, self.rules, deltas, rows
            )
        if self._suggest_memo is not None:
            self._suggest_memo.clear()
        return True

    def resync_master(self) -> bool:
        """Re-check the store version now; True iff caches were dropped.

        :meth:`fix` performs this check before every monitored tuple, so
        ordinary callers never need it.  It exists for hosts that swap the
        store's state out from under the engine *between* fixes and want
        the rebuild accounted to a known point — the batch engine's
        process-pool workers call it right after syncing their store
        handle to the parent's version stamp.
        """
        return self._sync_master_version()

    # -- the main loop (Fig. 3) -----------------------------------------------

    def fix(self, t: Row, oracle) -> FixSession:
        """Monitor one input tuple to a certain fix.

        Follows Fig. 3: Z' starts empty; each round recommends ``sug``,
        collects the user's assertions, validates them (unique-fix check on
        the concrete pattern ``t[Z' ∪ S]``), runs TransFix, and either
        finishes or computes a new suggestion.
        """
        self._sync_master_version()
        with obs.time_block("repro_fix_seconds"):
            session = self._fix_monitored(t, oracle)
        obs.inc(
            "repro_sessions_total",
            completed="true" if session.completed else "false",
        )
        obs.inc("repro_rounds_total", session.round_count)
        return session

    def _fix_monitored(self, t: Row, oracle) -> FixSession:
        row = t
        validated: frozenset = frozenset()
        session = FixSession(final=row, validated=validated)
        suggestion = Suggestion(
            attrs=self.initial_region.region.attrs,
            certain=True,
            source="initial-region",
        )
        cursor = self._start_cursor()
        all_attrs = set(self.schema.attributes)

        for round_index in range(1, self.max_rounds + 1):
            started = time.perf_counter()
            sug_attrs = tuple(
                a for a in suggestion.attrs if a not in validated
            )
            if not sug_attrs:
                sug_attrs = tuple(
                    a for a in self.schema.attributes if a not in validated
                )
            row_before = row
            values = oracle.assert_correct(row, sug_attrs)
            row = row.with_values(values)
            asserted = frozenset(values)
            revisions = 0

            if self.validate_uniqueness:
                while not self._unique(row, validated | asserted):
                    revisions += 1
                    if revisions > self.max_revisions:
                        raise ValidationFailed(
                            f"assertions on {sorted(asserted)} do not lead "
                            f"to a unique fix after {revisions - 1} revisions"
                        )
                    values = oracle.revise(
                        row, sug_attrs, "assertions conflict with master data"
                    )
                    row = row.with_values(values)
                    asserted = asserted | frozenset(values)

            # Compare against the row as it stood when the round began, so
            # values changed during revision rounds count as corrections too
            # (Fig. 10/11 metrics must not credit them to the rules).
            corrected = tuple(
                sorted(a for a in asserted if row[a] != row_before[a])
            )
            validated = validated | asserted
            result = self._transfix(row, validated)
            row = result.row
            validated = result.validated
            provenance = (
                self._round_provenance(result, round_index)
                if self.collect_provenance
                else ()
            )

            done = set(validated) >= all_attrs
            source = suggestion.source
            if not done:
                # Generating the next suggestion is part of this round's
                # latency (Fig. 12 measures "the time spent on fixing tuples
                # ... and for generating a suggestion").
                suggestion = self._next_suggestion(cursor, row, validated)

            session.rounds.append(
                RoundLog(
                    index=round_index,
                    suggested=sug_attrs,
                    asserted=tuple(sorted(asserted)),
                    corrected_by_user=corrected,
                    fixed_by_rules=result.fixed_attrs,
                    suggestion_source=source,
                    elapsed=time.perf_counter() - started,
                    revisions=revisions,
                    row_after=row,
                    validated_after=validated,
                    provenance=provenance,
                )
            )

            if done:
                session.completed = True
                break

        session.final = row
        session.validated = validated
        return session

    # -- overridable hot-path hooks (the batch engine memoizes these) ----------

    def _unique(self, row: Row, validated: frozenset) -> bool:
        outcome = chase(row, validated, self.rules, self._chase_store())
        return outcome.unique

    def _transfix(self, row: Row, validated: frozenset):
        return transfix(
            row, validated, self.rules, self._chase_store(), self.graph
        )

    def _chase_store(self):
        """The store chase/TransFix read from.  The batch engine's memo
        subclass swaps in a footprint-recording wrapper on miss paths."""
        return self.store

    def _round_provenance(self, result, round_index: int) -> tuple:
        """One :class:`FixProvenance` per rule application of this round.

        ``tm[rule.rhs_m]`` is exactly the value the application wrote
        (TransFix assigns ``t[B] := tm[Bm]``), so an earlier application
        overwritten later in the same round still reports its own value.
        """
        return tuple(
            FixProvenance(
                attr=rule.rhs,
                value=tm[rule.rhs_m],
                rule_name=rule.name,
                rule_index=self._rule_index.get(id(rule), -1),
                master_key=tm[rule.lhs_m],
                round_index=round_index,
            )
            for rule, tm in result.applied
        )

    def _start_cursor(self):
        return self._cache.start() if self._cache is not None else None

    def _next_suggestion(self, cursor, row: Row, validated: frozenset) -> Suggestion:
        if cursor is not None:
            return cursor.next_suggestion(row, validated)
        if self._suggest_memo is None:
            return self._fresh_suggestion(row, validated)
        # Suggest is a pure function of the validated pattern (Z', t[Z'])
        # for fixed (Σ, Dm) — the same argument that makes the batch
        # engine's chase/TransFix memos sound — so identical dirty shapes
        # reuse the suggestion outright on non-BDD streams.
        attrs = tuple(sorted(validated))
        key = (attrs, row[attrs])
        stamp = self._master_version
        cached = self._suggest_memo.get(key)
        if cached is not None:
            with self._memo_guard:
                self._suggest_stats.hits += 1
            return cached
        with self._memo_guard:
            self._suggest_stats.misses += 1
        suggestion = self._fresh_suggestion(row, validated)
        with self._memo_guard:
            # Stamp check: if the master moved while we computed, this
            # suggestion was certified against deleted/updated tuples and
            # must not outlive the invalidation that just cleared the memo.
            if self._master_version == stamp:
                self._suggest_memo[key] = suggestion
        return suggestion

    def _fresh_suggestion(self, row: Row, validated: frozenset) -> Suggestion:
        return suggest(
            self.rules,
            self.store,
            self.schema,
            row,
            validated,
            pattern_cache=self._pattern_cache,
            validate_patterns=self.suggest_validate_patterns,
        )

    # -- stream helper ----------------------------------------------------------

    def fix_stream(self, pairs, on_incomplete: str = "keep") -> list:
        """Monitor a sequence of ``(dirty_row, oracle)`` pairs.

        ``on_incomplete`` decides what happens when a session exhausts
        ``max_rounds`` without validating every attribute: ``"keep"`` returns
        the truncated session in place (``session.completed`` is False),
        ``"raise"`` surfaces it as :class:`IncompleteFix`.
        """
        if on_incomplete not in ("keep", "raise"):
            raise ValueError(
                f"on_incomplete must be 'keep' or 'raise', "
                f"got {on_incomplete!r}"
            )
        sessions = []
        for index, (row, oracle) in enumerate(pairs):
            session = self.fix(row, oracle)
            if not session.completed and on_incomplete == "raise":
                raise IncompleteFix(session, index=index)
            sessions.append(session)
        return sessions
