"""The DBLP dataset (Sect. 6): 12 attributes, 16 editing rules.

The paper joins DBLP inproceedings with their proceedings (via the
``crossref`` foreign key) and author homepages into one 12-attribute
relation used for both ``R`` and ``Rm``.  :func:`make_dblp` generates the
same structure: author entities with homepages, venue entities keyed by
``(btitle, year)`` with a unique ``crossref``/``isbn``/``publisher``, and
papers with two authors.

The 16 rules follow the paper's φ1–φ7 exactly, including the cross-attribute
homepage rules (φ2 matches the input's *second* author against the master's
*first* author column — "even when the master relation Rm and the relation R
share the same schema, some eRs still could not be syntactically expressed
as CFDs"):

* φ1–φ4: homepage rules over (a1, a2) × (hp1, hp2);
* φ5 (3 rules): ``(type, btitle, year) → {isbn, publisher, crossref}``;
* φ6 (4 rules): ``(type, crossref) → {btitle, year, isbn, publisher}``;
* φ7 (5 rules): ``(type, a1, a2, ptitle, pages) → {isbn, publisher, year,
  btitle, crossref}``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.patterns import PatternTuple, neq
from repro.core.rules import EditingRule
from repro.constraints.fd import FD
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, STRING
from repro.engine.tuples import Row
from repro.engine.values import NULL
from repro.datasets import vocab

DBLP_ATTRS = (
    "ptitle", "a1", "a2", "hp1", "hp2", "btitle",
    "publisher", "isbn", "crossref", "year", "type", "pages",
)

INPROCEEDINGS = "inproceedings"


def dblp_schema(name: str = "dblp") -> RelationSchema:
    return RelationSchema(name, [(a, STRING) for a in DBLP_ATTRS])


def dblp_rules() -> list:
    """The 16 DBLP editing rules (φ1–φ7 of Sect. 6)."""
    rules = [
        EditingRule("a1", "a1", "hp1", "hp1",
                    PatternTuple({"a1": neq(NULL)}), name="phi1"),
        EditingRule("a2", "a1", "hp2", "hp1",
                    PatternTuple({"a2": neq(NULL)}), name="phi2"),
        EditingRule("a2", "a2", "hp2", "hp2",
                    PatternTuple({"a2": neq(NULL)}), name="phi3"),
        EditingRule("a1", "a2", "hp1", "hp2",
                    PatternTuple({"a1": neq(NULL)}), name="phi4"),
    ]
    inproc = PatternTuple({"type": INPROCEEDINGS})
    venue_key = ("type", "btitle", "year")
    for attr in ("isbn", "publisher", "crossref"):
        rules.append(
            EditingRule(venue_key, venue_key, attr, attr, inproc,
                        name=f"phi5[{attr}]")
        )
    crossref_key = ("type", "crossref")
    for attr in ("btitle", "year", "isbn", "publisher"):
        rules.append(
            EditingRule(crossref_key, crossref_key, attr, attr, inproc,
                        name=f"phi6[{attr}]")
        )
    paper_key = ("type", "a1", "a2", "ptitle", "pages")
    for attr in ("isbn", "publisher", "year", "btitle", "crossref"):
        rules.append(
            EditingRule(paper_key, paper_key, attr, attr, inproc,
                        name=f"phi7[{attr}]")
        )
    return rules


def dblp_fds() -> list:
    """Key structure the generated master data must satisfy."""
    return [
        FD("a1", ("hp1",)),
        FD("a2", ("hp2",)),
        FD(("btitle", "year"), ("isbn", "publisher", "crossref")),
        FD("crossref", ("btitle", "year", "isbn", "publisher")),
        FD(("a1", "a2", "ptitle", "pages"),
           ("isbn", "publisher", "year", "btitle", "crossref")),
    ]


@dataclass
class DblpDataset:
    """Master data plus generator state for clean non-master tuples."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    authors: dict          # name -> homepage
    venues: dict           # crossref -> (btitle, year, publisher, isbn)
    venue_by_key: dict     # (btitle, year) -> crossref
    name: str = "dblp"

    def entity_factory(self, rng: random.Random) -> Row:
        """A clean paper *not* in the master data.

        Authors and venues are drawn from the master pools most of the time
        (a new paper by known authors at a known venue), keeping the clean
        tuple consistent with every master-derivable value; occasionally
        both are brand new, which costs an extra interaction round.
        """
        # Fresh entities are identified from the caller's RNG so workload
        # generation is deterministic per seed and independent of how often
        # this bundle was used before (48 bits: collisions negligible).
        n = rng.getrandbits(48)
        author_pool = sorted(self.authors)
        if rng.random() < 0.7 and len(author_pool) >= 2:
            a1, a2 = rng.sample(author_pool, 2)
            hp1, hp2 = self.authors[a1], self.authors[a2]
        else:
            a1, a2 = f"New Author{2 * n}", f"New Author{2 * n + 1}"
            hp1 = f"http://example.org/~new{2 * n}"
            hp2 = f"http://example.org/~new{2 * n + 1}"
        if rng.random() < 0.75 and self.venues:
            crossref = rng.choice(sorted(self.venues))
            btitle, year, publisher, isbn = self.venues[crossref]
        else:
            btitle = f"Workshop on Emerging Data {n}"
            year = str(rng.randint(1995, 2010))
            crossref = f"conf/new{n}/{year}"
            publisher = rng.choice(vocab.PUBLISHERS)
            isbn = f"978-1-9999-{n:04d}-0"
        start = rng.randint(1, 400)
        return Row(self.schema, {
            "ptitle": f"A Fresh Look at Unseen Data Problems {n}",
            "a1": a1,
            "a2": a2,
            "hp1": hp1,
            "hp2": hp2,
            "btitle": btitle,
            "publisher": publisher,
            "isbn": isbn,
            "crossref": crossref,
            "year": year,
            "type": INPROCEEDINGS,
            "pages": f"{start}-{start + rng.randint(8, 14)}",
        })


def _short(venue: str) -> str:
    return "".join(ch for ch in venue.lower() if ch.isalnum())[:8]


def make_dblp(
    num_papers: int = 1200,
    num_authors: int = 400,
    num_venues: int = 60,
    seed: int = 11,
) -> DblpDataset:
    """Generate the DBLP master data (``|Dm| = num_papers``)."""
    rng = random.Random(seed)

    authors = {}
    for i in range(num_authors):
        first = vocab.FIRST_NAMES[i % len(vocab.FIRST_NAMES)]
        last = vocab.LAST_NAMES[(i // len(vocab.FIRST_NAMES) + i) % len(vocab.LAST_NAMES)]
        name = f"{first} {last} {i:03d}"
        authors[name] = f"http://example.org/~{first[0].lower()}{last.lower()}{i:03d}"

    venues = {}
    venue_by_key = {}
    for v in range(num_venues):
        base = vocab.VENUE_NAMES[v % len(vocab.VENUE_NAMES)]
        year = str(1995 + (v * 3) % 16)
        btitle = f"Proceedings of {base}"
        key = (btitle, year)
        if key in venue_by_key:
            year = str(int(year) + 16)
            key = (btitle, year)
        crossref = f"conf/{_short(base)}/{year}"
        publisher = vocab.PUBLISHERS[v % len(vocab.PUBLISHERS)]
        isbn = f"978-3-5403-{v:04d}-{v % 10}"
        venues[crossref] = (btitle, year, publisher, isbn)
        venue_by_key[key] = crossref

    schema = dblp_schema()
    master = Relation(schema)
    author_pool = sorted(authors)
    venue_pool = sorted(venues)
    for p in range(num_papers):
        a1, a2 = rng.sample(author_pool, 2)
        crossref = venue_pool[p % len(venue_pool)]
        btitle, year, publisher, isbn = venues[crossref]
        adjective = vocab.TITLE_ADJECTIVES[p % len(vocab.TITLE_ADJECTIVES)]
        noun = vocab.TITLE_NOUNS[(p // 3) % len(vocab.TITLE_NOUNS)]
        task = vocab.TITLE_TASKS[(p // 7) % len(vocab.TITLE_TASKS)]
        start = rng.randint(1, 400)
        master.insert({
            "ptitle": f"{adjective} {noun} {task} {p:04d}",
            "a1": a1,
            "a2": a2,
            "hp1": authors[a1],
            "hp2": authors[a2],
            "btitle": btitle,
            "publisher": publisher,
            "isbn": isbn,
            "crossref": crossref,
            "year": year,
            "type": INPROCEEDINGS,
            "pages": f"{start}-{start + rng.randint(8, 14)}",
        })

    return DblpDataset(
        schema=schema,
        master_schema=schema,
        master=master,
        rules=dblp_rules(),
        authors=authors,
        venues=venues,
        venue_by_key=venue_by_key,
    )
