"""The HOSP dataset (Sect. 6): 19 attributes, 21 editing rules.

The paper joins three Hospital Compare tables — HOSP (hospital info),
HOSP_MSR_XWLK (per-hospital measure scores) and STATE_MSR_AVG (state
averages) — into one relation whose 19 attributes serve as both ``R`` and
``Rm``.  The site is long defunct, so :func:`make_hosp` generates the same
structure deterministically: hospital entities keyed by ``id`` with unique
phones, zip codes shared across hospitals and functionally determining city
and state, measure codes determining names and conditions, and state
averages computed from the actual generated scores.  The base tables are
materialized and natural-joined with the engine, exactly as the paper
describes.

The 21 rules include the five published ones verbatim
(``zip → ST``, ``phn → zip``, ``(mCode, ST) → sAvg``, ``(id, mCode) →
Score``, ``id → hName``) and complete the set so that the paper's region
structure is reproduced: the optimal certain region is
``Z = (id, mCode)`` of size 2 while the greedy baseline needs 4 (Exp-1(1)).
``nil`` pattern guards are modelled as ``≠ NULL`` (DESIGN.md §4.6).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.patterns import PatternTuple, neq
from repro.core.rules import EditingRule
from repro.constraints.fd import FD
from repro.engine.query import natural_join
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, STRING, INT
from repro.engine.tuples import Row
from repro.engine.values import NULL
from repro.datasets import vocab

HOSP_ATTRS = (
    "id", "provider", "hName", "hType", "hOwner", "emergency",
    "phn", "zip", "city", "ST", "addr1", "addr2", "addr3",
    "mCode", "mName", "condition", "Score", "sample", "sAvg",
)


def hosp_schema(name: str = "hosp") -> RelationSchema:
    """The 19-attribute joined schema (used for both R and Rm)."""
    domains = {"Score": INT}
    return RelationSchema(
        name, [(a, domains.get(a, STRING)) for a in HOSP_ATTRS]
    )


def _nil_guard(*attrs) -> PatternTuple:
    """The paper's ``tp[A] = (nil)`` guards: the key must be non-null."""
    return PatternTuple({a: neq(NULL) for a in attrs})


def hosp_rules() -> list:
    """The 21 HOSP editing rules (5 published + 16 completing the set)."""
    r = []

    def add(name, lhs, rhs):
        lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        r.append(
            EditingRule(lhs, lhs, rhs, rhs, _nil_guard(*lhs), name=name)
        )

    add("h1:id->phn", "id", "phn")
    add("h2:id->provider", "id", "provider")
    add("h3:id->emergency", "id", "emergency")
    add("h4:id->hName", "id", "hName")            # the paper's φ5
    add("h5:phn->zip", "phn", "zip")              # the paper's φ2
    add("h6:phn->hType", "phn", "hType")
    add("h7:phn->hOwner", "phn", "hOwner")
    add("h8:phn->addr1", "phn", "addr1")
    add("h9:phn->addr2", "phn", "addr2")
    add("h10:phn->addr3", "phn", "addr3")
    add("h11:zip->ST", "zip", "ST")               # the paper's φ1
    add("h12:zip->city", "zip", "city")
    add("h13:mCode->mName", "mCode", "mName")
    add("h14:mCode,mName->condition", ("mCode", "mName"), "condition")
    add("h15:id,mCode->Score", ("id", "mCode"), "Score")   # the paper's φ4
    add("h16:id,mCode->sample", ("id", "mCode"), "sample")
    add("h17:mCode,ST->sAvg", ("mCode", "ST"), "sAvg")     # the paper's φ3
    add("h18:zip,ST->city", ("zip", "ST"), "city")
    add("h19:phn,zip->hName", ("phn", "zip"), "hName")
    add("h20:id,phn->hOwner", ("id", "phn"), "hOwner")
    add("h21:id,zip->addr1", ("id", "zip"), "addr1")
    return r


def hosp_fds() -> list:
    """The key structure the generated master data must satisfy."""
    return [
        FD("id", ("phn", "provider", "emergency", "hName")),
        FD("phn", ("zip", "hType", "hOwner", "addr1", "addr2", "addr3")),
        FD("zip", ("ST", "city")),
        FD("mCode", ("mName", "condition")),
        FD(("id", "mCode"), ("Score", "sample")),
        FD(("mCode", "ST"), ("sAvg",)),
    ]


@dataclass
class HospDataset:
    """Master data plus the generator state needed for clean non-master tuples."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    base_tables: dict
    zip_map: dict          # zip -> (city, ST)
    measure_map: dict      # mCode -> (mName, condition)
    state_avg: dict        # (mCode, ST) -> sAvg
    measures: list
    name: str = "hosp"

    def entity_factory(self, rng: random.Random) -> Row:
        """A clean input tuple for a hospital *not* in the master data.

        Consistent with every master-derivable value (same zip -> same
        city/ST, same measure -> same name/condition, same (measure, state)
        -> same average), so certain fixes on it are still correct.  A
        fraction of new hospitals sits in brand-new zip codes, which is what
        pushes those tuples into an extra interaction round.
        """
        # Fresh entities are identified from the caller's RNG so workload
        # generation is deterministic per seed and independent of how often
        # this bundle was used before (48 bits: collisions negligible).
        n = rng.getrandbits(48)
        if rng.random() < 0.7 and self.zip_map:
            zip_code = rng.choice(sorted(self.zip_map))
            city, state = self.zip_map[zip_code]
        else:
            zip_code = f"99{n:03d}"
            city = rng.choice(vocab.CITIES)
            state = rng.choice(vocab.STATES)
        m_code = rng.choice(self.measures)
        m_name, condition = self.measure_map[m_code]
        s_avg = self.state_avg.get(
            (m_code, state), f"{rng.uniform(50, 99):.1f}"
        )
        return Row(self.schema, {
            "id": f"N{n:06d}",
            "provider": f"NP{n:06d}",
            "hName": f"{city} {rng.choice(vocab.HOSPITAL_SUFFIXES)} {n}",
            "hType": rng.choice(vocab.HOSPITAL_TYPES),
            "hOwner": rng.choice(vocab.HOSPITAL_OWNERS),
            "emergency": rng.choice(("Yes", "No")),
            "phn": f"999{n:07d}",
            "zip": zip_code,
            "city": city,
            "ST": state,
            "addr1": f"{rng.randint(1, 999)} {rng.choice(vocab.STREETS)}",
            "addr2": f"Suite {rng.randint(1, 40)}",
            "addr3": f"PO Box {rng.randint(100, 9999)}",
            "mCode": m_code,
            "mName": m_name,
            "condition": condition,
            "Score": rng.randint(10, 100),
            "sample": f"{rng.randint(20, 900)} patients",
            "sAvg": s_avg,
        })


def _make_measures(num_measures: int) -> list:
    """``(mCode, mName, condition)`` triples from the measure families."""
    out = []
    for family, (condition, names) in vocab.MEASURE_FAMILIES.items():
        for i, m_name in enumerate(names, start=1):
            out.append((f"{family}-{i}", m_name, condition))
    return out[:num_measures]


def make_hosp(
    num_hospitals: int = 120,
    num_measures: int = 10,
    seed: int = 7,
) -> HospDataset:
    """Generate the HOSP master data (``|Dm| = hospitals × measures``)."""
    rng = random.Random(seed)
    measures = _make_measures(num_measures)
    if len(measures) < num_measures:
        raise ValueError(
            f"at most {len(measures)} measures available, "
            f"{num_measures} requested"
        )

    # Geography: cities with a state; zips shared by a few hospitals each.
    cities = [
        (city, vocab.STATES[i % len(vocab.STATES)])
        for i, city in enumerate(vocab.CITIES)
    ]
    zip_map = {}
    num_zips = max(1, num_hospitals // 2)
    for z in range(num_zips):
        city, state = cities[z % len(cities)]
        zip_map[f"{10000 + z * 7:05d}"] = (city, state)
    zips = sorted(zip_map)

    hosp_table_schema = RelationSchema(
        "HOSP",
        [
            ("id", STRING), ("provider", STRING), ("hName", STRING),
            ("hType", STRING), ("hOwner", STRING), ("emergency", STRING),
            ("phn", STRING), ("zip", STRING), ("city", STRING),
            ("ST", STRING), ("addr1", STRING), ("addr2", STRING),
            ("addr3", STRING),
        ],
    )
    xwlk_schema = RelationSchema(
        "HOSP_MSR_XWLK",
        [
            ("id", STRING), ("mCode", STRING), ("mName", STRING),
            ("condition", STRING), ("Score", INT), ("sample", STRING),
        ],
    )
    avg_schema = RelationSchema(
        "STATE_MSR_AVG",
        [("mCode", STRING), ("ST", STRING), ("sAvg", STRING)],
    )

    hospitals = Relation(hosp_table_schema)
    for h in range(num_hospitals):
        zip_code = zips[h % len(zips)]
        city, state = zip_map[zip_code]
        hospitals.insert({
            "id": f"H{h:06d}",
            "provider": f"P{h:06d}",
            "hName": f"{city} {vocab.HOSPITAL_SUFFIXES[h % len(vocab.HOSPITAL_SUFFIXES)]} {h}",
            "hType": vocab.HOSPITAL_TYPES[h % len(vocab.HOSPITAL_TYPES)],
            "hOwner": vocab.HOSPITAL_OWNERS[h % len(vocab.HOSPITAL_OWNERS)],
            "emergency": "Yes" if h % 3 else "No",
            "phn": f"555{h:07d}",
            "zip": zip_code,
            "city": city,
            "ST": state,
            "addr1": f"{rng.randint(1, 999)} {vocab.STREETS[h % len(vocab.STREETS)]}",
            "addr2": f"Suite {rng.randint(1, 40)}",
            "addr3": f"PO Box {rng.randint(100, 9999)}",
        })

    xwlk = Relation(xwlk_schema)
    score_acc: dict = {}
    for hrow in hospitals:
        for m_code, m_name, condition in measures:
            score = rng.randint(10, 100)
            xwlk.insert({
                "id": hrow["id"],
                "mCode": m_code,
                "mName": m_name,
                "condition": condition,
                "Score": score,
                "sample": f"{rng.randint(20, 900)} patients",
            })
            score_acc.setdefault((m_code, hrow["ST"]), []).append(score)

    averages = Relation(avg_schema)
    state_avg = {}
    for (m_code, state), scores in sorted(score_acc.items()):
        value = f"{sum(scores) / len(scores):.1f}"
        state_avg[(m_code, state)] = value
        averages.insert({"mCode": m_code, "ST": state, "sAvg": value})

    joined = natural_join(
        natural_join(hospitals, xwlk, name="hosp_x"), averages, name="hosp"
    )
    schema = hosp_schema()
    master = Relation(schema)
    for row in joined:
        master.insert(Row(schema, {a: row[a] for a in HOSP_ATTRS}))

    return HospDataset(
        schema=schema,
        master_schema=schema,
        master=master,
        rules=hosp_rules(),
        base_tables={
            "HOSP": hospitals,
            "HOSP_MSR_XWLK": xwlk,
            "STATE_MSR_AVG": averages,
        },
        zip_map=zip_map,
        measure_map={m: (n, c) for m, n, c in measures},
        state_avg=state_avg,
        measures=[m for m, _, _ in measures],
    )
