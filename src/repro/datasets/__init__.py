"""Datasets of the paper's evaluation (Sect. 6), built synthetically.

The paper uses two real-life corpora: HOSP (US Hospital Compare, three
tables natural-joined into a 19-attribute relation) and DBLP (a 12-attribute
join of inproceedings, proceedings and homepages).  Neither is fetchable
offline, so deterministic generators reproduce the schemas, rule sets, key
structure and join construction (DESIGN.md §5 documents why this preserves
every measured behaviour).

* :mod:`repro.datasets.running_example` — Fig. 1's supplier/master example.
* :mod:`repro.datasets.hosp` — the 19-attribute HOSP dataset with 21 eRs.
* :mod:`repro.datasets.dblp` — the 12-attribute DBLP dataset with 16 eRs.
* :mod:`repro.datasets.dirty` — the dirty-data generator (duplicate rate
  ``d%``, noise rate ``n%``, master size ``|Dm|``).
* :mod:`repro.datasets.vocab` — deterministic value pools.
"""

from repro.datasets.dblp import DblpDataset, make_dblp
from repro.datasets.dirty import DirtyDataset, DirtyTuple, make_dirty_dataset
from repro.datasets.hosp import HospDataset, make_hosp
from repro.datasets.running_example import RunningExample, make_running_example

__all__ = [
    "DblpDataset",
    "DirtyDataset",
    "DirtyTuple",
    "HospDataset",
    "RunningExample",
    "make_dblp",
    "make_dirty_dataset",
    "make_hosp",
    "make_running_example",
]
