"""The running example of the paper (Fig. 1, Examples 1-15).

Schemas: input tuples describe UK suppliers
``R(FN, LN, AC, phn, type, str, city, zip, item)`` (``type`` 1 = home phone,
2 = mobile); the master relation is
``Rm(FN, LN, AC, Hphn, Mphn, str, city, zip, DOB, gender)``.

The concrete values of Fig. 1 are not present in the text-only source, so
they are reconstructed from the prose of Examples 1-13 (every behaviour the
examples state is asserted by the test-suite):

* ``t1``: Bob Brady, AC 020 / city Edi inconsistency; eR1 (zip) corrects AC
  and str from ``s1``; eR2 (mobile phone) standardizes Bob -> Robert.
* ``t2``: home phone matching ``s1[AC, Hphn]``; ``str``/``zip`` missing and
  ``city`` wrong; eR3 fixes city and enriches str/zip.
* ``t3``: ``zip`` agreeing with ``s1`` but ``AC, phn`` agreeing with ``s2``
  - applying φ1 and φ3 suggests distinct cities (Example 5's conflict).
* ``t4``: matches no rule/master combination at all.

One reconstruction note: the region ``(Z_AH, T_AH)`` is written
``((AC, phn, type), {(0800, _, 1)})`` in the text, yet Example 6 applies
``φ3`` (whose pattern requires ``AC ≠ 0800``) to the marked ``t3`` - the
pattern constant must therefore be the *negation* ``0800̄``, which is what
we use (otherwise no marked tuple could ever be fixed by φ3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.patterns import ANY, PatternTuple, neq
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema, STRING, finite_domain
from repro.engine.tuples import Row
from repro.engine.values import NULL

PHONE_TYPE = finite_domain("phone_type", {1, 2})


@dataclass
class RunningExample:
    """All artifacts of the paper's running example."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    inputs: dict
    masters: dict
    regions: dict = field(default_factory=dict)

    @property
    def sigma0(self) -> list:
        """The paper's Σ0 = {φ1..φ9} (Example 11's full expansion)."""
        return self.rules


def make_running_example() -> RunningExample:
    """Build Fig. 1 with the nine rules of Example 11."""
    schema = RelationSchema(
        "R",
        [
            ("FN", STRING), ("LN", STRING), ("AC", STRING),
            ("phn", STRING), ("type", PHONE_TYPE), ("str", STRING),
            ("city", STRING), ("zip", STRING), ("item", STRING),
        ],
    )
    master_schema = RelationSchema(
        "Rm",
        [
            ("FN", STRING), ("LN", STRING), ("AC", STRING),
            ("Hphn", STRING), ("Mphn", STRING), ("str", STRING),
            ("city", STRING), ("zip", STRING), ("DOB", STRING),
            ("gender", STRING),
        ],
    )

    s1 = Row(master_schema, {
        "FN": "Robert", "LN": "Brady", "AC": "131",
        "Hphn": "6884563", "Mphn": "079172485",
        "str": "51 Elm Row", "city": "Edi", "zip": "EH7 4AH",
        "DOB": "11/11/55", "gender": "M",
    })
    s2 = Row(master_schema, {
        "FN": "Mark", "LN": "Smith", "AC": "020",
        "Hphn": "6884563", "Mphn": "075568485",
        "str": "20 Baker St", "city": "Lnd", "zip": "NW1 6XE",
        "DOB": "25/12/67", "gender": "M",
    })
    master = Relation(master_schema, [s1, s2])

    # Example 11: Σ0 fully expanded.
    rules = [
        # eR1 (φ1-φ3): zip determines AC / str / city.
        EditingRule("zip", "zip", "AC", "AC", PatternTuple({}), name="phi1"),
        EditingRule("zip", "zip", "str", "str", PatternTuple({}), name="phi2"),
        EditingRule("zip", "zip", "city", "city", PatternTuple({}), name="phi3"),
        # eR2 (φ4-φ5): mobile phone standardizes the name.
        EditingRule("phn", "Mphn", "FN", "FN",
                    PatternTuple({"type": 2}), name="phi4"),
        EditingRule("phn", "Mphn", "LN", "LN",
                    PatternTuple({"type": 2}), name="phi5"),
        # eR3 (φ6-φ8): home phone (type 1, geographic AC) fixes the address.
        EditingRule(("AC", "phn"), ("AC", "Hphn"), "str", "str",
                    PatternTuple({"type": 1, "AC": neq("0800")}), name="phi6"),
        EditingRule(("AC", "phn"), ("AC", "Hphn"), "city", "city",
                    PatternTuple({"type": 1, "AC": neq("0800")}), name="phi7"),
        EditingRule(("AC", "phn"), ("AC", "Hphn"), "zip", "zip",
                    PatternTuple({"type": 1, "AC": neq("0800")}), name="phi8"),
        # φ9: toll-free AC determines city via master data.
        EditingRule("AC", "AC", "city", "city",
                    PatternTuple({"AC": "0800"}), name="phi9"),
    ]

    inputs = {
        "t1": Row(schema, {
            "FN": "Bob", "LN": "Brady", "AC": "020",
            "phn": "079172485", "type": 2, "str": "501 Elm St",
            "city": "Edi", "zip": "EH7 4AH", "item": "CD",
        }),
        "t2": Row(schema, {
            "FN": "Robert", "LN": "Brady", "AC": "131",
            "phn": "6884563", "type": 1, "str": NULL,
            "city": "Lnd", "zip": NULL, "item": "CD",
        }),
        "t3": Row(schema, {
            "FN": "Mark", "LN": "Smith", "AC": "020",
            "phn": "6884563", "type": 1, "str": "20 Baker St",
            "city": "Edi", "zip": "EH7 4AH", "item": "BOOK",
        }),
        "t4": Row(schema, {
            "FN": "Jane", "LN": "Doe", "AC": "0131",
            "phn": "5551234", "type": 2, "str": "1 High St",
            "city": "Gla", "zip": "G1 1AA", "item": "DVD",
        }),
    }

    regions = {
        # (Z_AH, T_AH): Example 6 (see the module docstring on the negation).
        "ZAH": Region.from_patterns(
            ("AC", "phn", "type"),
            [PatternTuple({"AC": neq("0800"), "phn": ANY, "type": 1})],
        ),
        # (Z_AHZ, T_AHZ): Example 8's extension by zip - loses uniqueness.
        "ZAHZ": Region.from_patterns(
            ("AC", "phn", "type", "zip"),
            [PatternTuple(
                {"AC": neq("0800"), "phn": ANY, "type": 1, "zip": ANY}
            )],
        ),
        # (Z_zm, T_zm): Example 8 - unique fix for t1, but item uncovered.
        "Zzm": Region.from_patterns(
            ("zip", "phn", "type"),
            [PatternTuple({"zip": ANY, "phn": ANY, "type": 2})],
        ),
        # (Z_zmi, T_zmi): Example 9's certain region - patterns (z, p, 2, _)
        # over s[zip, Mphn] for every master tuple s.
        "Zzmi": Region.from_patterns(
            ("zip", "phn", "type", "item"),
            [
                PatternTuple({
                    "zip": s["zip"], "phn": s["Mphn"], "type": 2, "item": ANY,
                })
                for s in master
            ],
        ),
        # (Z_L, T_L): Example 9's second certain region - (f, l, a, h, 1, _).
        "ZL": Region.from_patterns(
            ("FN", "LN", "AC", "phn", "type", "item"),
            [
                PatternTuple({
                    "FN": s["FN"], "LN": s["LN"], "AC": s["AC"],
                    "phn": s["Hphn"], "type": 1, "item": ANY,
                })
                for s in master
            ],
        ),
    }

    return RunningExample(
        schema=schema,
        master_schema=master_schema,
        master=master,
        rules=rules,
        inputs=inputs,
        masters={"s1": s1, "s2": s2},
        regions=regions,
    )
