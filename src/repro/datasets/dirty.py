"""The dirty-data generator (Sect. 6).

"A dirty data generator was developed. Given a clean dataset, it generated
dirty data controlled by three parameters: (a) duplicate rate d%, the
probability that an input tuple matches a tuple in master data; (b) noise
rate n%, the percentage of erroneous attributes in input tuples; and (c) the
cardinality |Dm| of the master dataset."

Each produced tuple keeps its ground truth alongside, so user feedback can
be simulated and metrics computed.  Errors are injected per attribute with
probability ``n%`` and are one of: a typo (character-level edit), a value
swapped in from another tuple's column, or a dropped (NULL) value.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Sequence

from repro.engine.relation import Relation
from repro.engine.tuples import Row
from repro.engine.values import NULL


@dataclass
class DirtyTuple:
    """One generated input tuple with its ground truth."""

    dirty: Row
    clean: Row
    is_master: bool

    @property
    def erroneous_attrs(self) -> tuple:
        return self.dirty.diff(self.clean)

    @property
    def is_erroneous(self) -> bool:
        return self.dirty != self.clean


@dataclass
class DirtyDataset:
    """A generated workload with its parameters."""

    tuples: list
    duplicate_rate: float
    noise_rate: float
    master_size: int
    seed: int

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self):
        return iter(self.tuples)

    @property
    def erroneous_count(self) -> int:
        return sum(1 for t in self.tuples if t.is_erroneous)

    @property
    def master_fraction(self) -> float:
        if not self.tuples:
            return 0.0
        return sum(1 for t in self.tuples if t.is_master) / len(self.tuples)


def _typo(value, rng: random.Random):
    """A character-level corruption of *value* (type-preserving for ints)."""
    if isinstance(value, int):
        delta = rng.choice((-11, -3, 7, 13, 20))
        return value + delta
    text = str(value)
    if not text:
        return "x"
    op = rng.random()
    position = rng.randrange(len(text))
    letter = rng.choice(string.ascii_lowercase + string.digits)
    if op < 0.4:
        return text[:position] + letter + text[position + 1:]
    if op < 0.7:
        return text[:position] + letter + text[position:]
    if len(text) > 1:
        return text[:position] + text[position + 1:]
    return text + letter


def _corrupt(value, attr: str, master: Relation, rng: random.Random):
    """One corrupted variant of *value* (typo / swap / null), guaranteed to
    differ; returns None when no differing corruption was found."""
    for _ in range(6):
        roll = rng.random()
        if roll < 0.5:
            candidate = _typo(value, rng)
        elif roll < 0.8 and len(master) > 0:
            donor = master.row_at(rng.randrange(len(master)))
            candidate = donor[attr]
        else:
            candidate = NULL
        if candidate != value:
            return candidate
    return None


def make_dirty_dataset(
    dataset,
    size: int,
    duplicate_rate: float = 0.3,
    noise_rate: float = 0.2,
    seed: int = 42,
    noise_attrs: Sequence = None,
) -> DirtyDataset:
    """Generate *size* dirty tuples from a dataset bundle.

    *dataset* must expose ``schema``, ``master`` and
    ``entity_factory(rng) -> Row`` (both :class:`~repro.datasets.hosp.HospDataset`
    and :class:`~repro.datasets.dblp.DblpDataset` do).  ``noise_attrs``
    restricts corruption to a subset of attributes (default: all, as in the
    paper — "the errors were distributed across all attributes").
    """
    rng = random.Random(seed)
    master: Relation = dataset.master
    schema = dataset.schema
    attrs = tuple(noise_attrs) if noise_attrs is not None else schema.attributes

    tuples = []
    for _ in range(size):
        is_master = rng.random() < duplicate_rate and len(master) > 0
        if is_master:
            source = master.row_at(rng.randrange(len(master)))
            clean = Row(schema, {a: source[a] for a in schema.attributes})
        else:
            clean = dataset.entity_factory(rng)
        updates = {}
        for attr in attrs:
            if rng.random() < noise_rate:
                corrupted = _corrupt(clean[attr], attr, master, rng)
                if corrupted is not None:
                    updates[attr] = corrupted
        dirty = clean.with_values(updates) if updates else clean
        tuples.append(DirtyTuple(dirty=dirty, clean=clean, is_master=is_master))

    return DirtyDataset(
        tuples=tuples,
        duplicate_rate=duplicate_rate,
        noise_rate=noise_rate,
        master_size=len(master),
        seed=seed,
    )
