"""Deterministic value pools for the synthetic dataset generators."""

from __future__ import annotations

FIRST_NAMES = [
    "Robert", "Mary", "James", "Linda", "Michael", "Patricia", "William",
    "Barbara", "David", "Elizabeth", "Richard", "Jennifer", "Joseph",
    "Maria", "Thomas", "Susan", "Charles", "Margaret", "Daniel", "Dorothy",
    "Matthew", "Lisa", "Anthony", "Nancy", "Mark", "Karen", "Paul", "Betty",
    "Steven", "Helen", "George", "Sandra", "Kenneth", "Donna", "Andrew",
    "Carol", "Edward", "Ruth", "Joshua", "Sharon",
]

LAST_NAMES = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Miller", "Davis",
    "Garcia", "Rodriguez", "Wilson", "Martinez", "Anderson", "Taylor",
    "Thomas", "Hernandez", "Moore", "Martin", "Jackson", "Thompson",
    "White", "Lopez", "Lee", "Gonzalez", "Harris", "Clark", "Lewis",
    "Robinson", "Walker", "Perez", "Hall", "Young", "Allen", "Sanchez",
    "Wright", "King", "Scott", "Green", "Baker", "Adams", "Nelson",
]

STREETS = [
    "Elm St", "Oak Ave", "Maple Dr", "Pine Rd", "Cedar Ln", "Birch Way",
    "Walnut Blvd", "Chestnut Ct", "Spruce Ter", "Willow Pl", "Ash Cir",
    "Poplar Sq", "Hickory Row", "Magnolia Pkwy", "Sycamore Xing",
    "Juniper Path", "Laurel Bnd", "Holly Gln", "Dogwood Trl", "Linden Walk",
]

STATES = [
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA",
    "HI", "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD",
    "MA", "MI", "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ",
]

CITIES = [
    "Springfield", "Riverton", "Fairview", "Georgetown", "Salem",
    "Madison", "Clinton", "Arlington", "Ashland", "Dover", "Franklin",
    "Greenville", "Bristol", "Oxford", "Milton", "Newport", "Auburn",
    "Dayton", "Lexington", "Milford", "Winchester", "Clayton", "Hudson",
    "Kingston", "Florence",
]

HOSPITAL_SUFFIXES = [
    "General Hospital", "Medical Center", "Regional Medical Center",
    "Community Hospital", "Memorial Hospital", "University Hospital",
    "Health Center", "Mercy Hospital",
]

HOSPITAL_TYPES = [
    "Acute Care Hospitals", "Critical Access Hospitals",
    "Childrens Hospitals",
]

HOSPITAL_OWNERS = [
    "Voluntary non-profit - Private", "Proprietary",
    "Government - State", "Government - Local",
    "Voluntary non-profit - Church",
]

MEASURE_FAMILIES = {
    "AMI": ("Heart Attack", [
        "Aspirin at arrival", "Aspirin at discharge",
        "ACE inhibitor for LVSD", "Beta blocker at discharge",
        "Fibrinolytic within 30 minutes", "PCI within 90 minutes",
        "Smoking cessation advice",
    ]),
    "HF": ("Heart Failure", [
        "Discharge instructions", "LVS assessment",
        "ACE inhibitor for LVSD", "Smoking cessation advice",
    ]),
    "PN": ("Pneumonia", [
        "Oxygenation assessment", "Pneumococcal vaccination",
        "Blood culture before antibiotic", "Smoking cessation advice",
        "Initial antibiotic within 6 hours", "Appropriate antibiotic",
        "Influenza vaccination",
    ]),
    "SCIP": ("Surgical Care", [
        "Antibiotic within 1 hour", "Antibiotic selection",
        "Antibiotic stopped within 24 hours", "Glucose control",
        "Appropriate hair removal", "Beta blocker continued",
    ]),
}

PUBLISHERS = [
    "Springer", "ACM", "IEEE Computer Society", "Morgan Kaufmann",
    "VLDB Endowment", "Elsevier", "IOS Press", "CEUR-WS.org",
]

VENUE_NAMES = [
    "SIGMOD Conference", "VLDB", "ICDE", "EDBT", "ICDT", "PODS",
    "CIKM", "WWW", "KDD", "SIGIR", "WSDM", "DASFAA", "SSDBM",
    "DEXA", "ADBIS", "BNCOD",
]

TITLE_NOUNS = [
    "Queries", "Views", "Joins", "Indexes", "Streams", "Schemas",
    "Dependencies", "Transactions", "Workloads", "Graphs", "Patterns",
    "Constraints", "Repairs", "Provenance", "Sampling", "Sketches",
]

TITLE_ADJECTIVES = [
    "Efficient", "Scalable", "Adaptive", "Incremental", "Distributed",
    "Approximate", "Robust", "Certain", "Optimal", "Parallel",
    "Declarative", "Interactive",
]

TITLE_TASKS = [
    "Processing", "Evaluation", "Optimization", "Discovery", "Cleaning",
    "Mining", "Integration", "Matching", "Maintenance", "Answering",
]
