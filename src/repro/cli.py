"""Command-line interface: ``python -m repro <command>``.

Six commands wrap the library for file-based use:

* ``analyze``      — load rules (JSON) and master data (CSV), report the
  rule dependency structure, the certain regions, and the user burden;
  structurally lints the rule file first (exit 2 on error findings);
* ``lint``         — run the :mod:`repro.lint` static analyzer over a rule
  file and a master backend (memory/sqlite/remote) and render the report
  as text, JSON, or SARIF; ``--fail-on`` turns findings into exit code 1
  (the CI gate);
* ``mine``         — discover editing rules from a master CSV and write
  them as a JSON rule file (review before deploying; see ablation A4);
  lints the discovered rules first unless ``--no-lint``;
* ``batch-repair`` — stream a dirty CSV through the batch repair engine
  (shared caches, chunked execution, optional concurrency) and write the
  repaired rows plus a throughput report; ``--preflight`` controls the
  engine's structural lint gate; ``--progress`` prints live heartbeat
  lines (tuples/s, ETA, cache hit rates, per-worker throughput) to stderr;
* ``serve-master`` — expose a master CSV (memory- or sqlite-backed) as an
  HTTP master server that remote ``batch-repair --master-backend remote``
  clients consult through a read-through cache; serves Prometheus
  telemetry on ``GET /metrics``;
* ``metrics``      — scrape a running ``serve-master``'s ``/metrics`` and
  print it (Prometheus text or JSON);
* ``demo``         — run the paper's running example end to end.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import io as rule_io
from repro.analysis.closure import mandatory_attrs
from repro.analysis.dependency_graph import DependencyGraph
from repro.discovery import discover_editing_rules, rules_only
from repro.engine.csvio import relation_from_csv, relation_to_csv
from repro.repair.region_search import comp_c_region, g_region


def _load_rules_file(path: str):
    """Parse a rule JSON file, raising ``ValueError`` with the E100 shape
    on malformed content (the CLI-level 'unparsable-rules' diagnostic)."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    try:
        return rule_io.loads(text)
    except (ValueError, KeyError, TypeError) as exc:
        raise ValueError(
            f"E100 [unparsable-rules]: {path} is not a valid rule file: "
            f"{exc}"
        ) from exc


def _cmd_analyze(args) -> int:
    from repro.lint import structural_report

    try:
        master = relation_from_csv(args.master)
        rules = _load_rules_file(args.rules)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    schema = master.schema  # same-schema deployments (R = Rm), as in Sect. 6

    # Structural preflight: a rule naming an unknown attribute used to die
    # deep inside comp_c_region with a bare KeyError; fail with the
    # diagnostics instead.
    report = structural_report(rules, schema)
    if report.errors:
        print(f"error: {args.rules} fails structural lint:", file=sys.stderr)
        for diagnostic in report.errors:
            print(diagnostic.describe(), file=sys.stderr)
        print("(run `repro lint` for the full report)", file=sys.stderr)
        return 2

    print(f"master data : {len(master)} tuples over {len(schema)} attributes")
    print(f"rule set    : {len(rules)} editing rules")
    graph = DependencyGraph(rules)
    cycle = graph.find_cycle()
    cycle_note = (
        f" (cyclic: {' -> '.join(cycle + [cycle[0]])})" if cycle else ""
    )
    print(f"dependencies: {graph.edge_count} edges{cycle_note}")
    unfixable = sorted(mandatory_attrs(schema, rules))
    print(f"unfixable   : {unfixable} (must be user-validated)")

    regions = comp_c_region(rules, master, schema,
                            validate_patterns=args.validate_patterns)
    if not regions:
        print("\nNO certain region exists: the rules cannot guarantee "
              "complete fixes for any tuple. Add rules or master data.")
        return 1
    print("\ncertain regions (best first):")
    for candidate in regions:
        print(f"  {candidate.describe()}")
    greedy = g_region(rules, master, schema,
                      validate_patterns=args.validate_patterns)
    if greedy is not None:
        print(f"\ngreedy baseline would ask for {greedy.size} attributes; "
              f"CompCRegion asks for {regions[0].size}.")
    return 0


def _cmd_mine(args) -> int:
    master = relation_from_csv(args.master)
    discovered = discover_editing_rules(
        master,
        max_lhs_size=args.max_key,
        min_key_ratio=args.min_selectivity,
    )
    print(f"mined {len(discovered)} rules from {len(master)} master tuples")
    for d in discovered[: args.show]:
        print(f"  {d.describe()}")
    rules = rules_only(discovered)
    if args.lint:
        from repro.lint import run_lint

        report = run_lint(rules, master.schema, master)
        print(f"lint: {report.summary()}")
        if report.errors:
            for diagnostic in report.errors:
                print(diagnostic.describe(), file=sys.stderr)
            print(f"error: refusing to write {args.output}: discovered "
                  f"rules have error-level lint findings (re-run with "
                  f"--no-lint to write them anyway)", file=sys.stderr)
            return 2
    text = rule_io.dumps(rules)
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\nwrote {args.output} - review before deploying (an FD that "
          f"holds on master data need not be a domain invariant).")
    return 0


def _cmd_lint(args) -> int:
    from repro.engine.store import StoreError, as_master_store
    from repro.lint import apply_fixits, run_lint, sarif_rule_metadata

    try:
        with open(args.rules, encoding="utf-8") as handle:
            text = handle.read()
        try:
            rules, region, rule_lines = rule_io.load_document(text)
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(
                f"E100 [unparsable-rules]: {args.rules} is not a valid rule "
                f"file: {exc}"
            ) from exc
        store = as_master_store(_load_master_store(args))
    except (OSError, ValueError, StoreError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.fix:
        # Fixed-point loop: removing a rule can surface new findings (a
        # subsumed rule becomes dead, a region extension becomes minimal),
        # so re-lint after each batch.  Five rounds bounds pathological
        # rule files; a converged run's last lint is the one reported.
        applied_total = 0
        for _ in range(5):
            try:
                report = run_lint(rules, store.schema, store, region=region)
            except StoreError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            result = apply_fixits(rules, report.diagnostics, region)
            if not result.changed:
                break
            rules, region = result.rules, result.region
            applied_total += len(result.applied)
            for fixit in result.applied:
                print(f"fix: {json.dumps(fixit, sort_keys=True, default=str)}")
        else:
            print("error: --fix did not reach a fixed point after 5 rounds",
                  file=sys.stderr)
            return 2
        if applied_total:
            text = rule_io.dumps(rules, region=region)
            with open(args.rules, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            rule_lines = rule_io.rule_source_lines(text + "\n", len(rules))
            print(f"fix: applied {applied_total} fix-it(s) and rewrote "
                  f"{args.rules}")
        else:
            print("fix: no applyable fix-its")

    try:
        report = run_lint(rules, store.schema, store, region=region)
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "text":
        rendered = report.describe()
    elif args.format == "json":
        rendered = report.to_json()
    else:
        rendered = json.dumps(
            report.to_sarif(
                artifact_uri=args.rules,
                rule_metadata=sarif_rule_metadata(report.passes_run),
                rule_lines=rule_lines,
            ),
            indent=2,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"wrote {args.format} report to {args.output}")
        print(report.summary())
    else:
        print(rendered)
    return 1 if report.fails(args.fail_on) else 0


def _parse_shard_spec(spec: str) -> tuple:
    """Parse a ``serve-master --shard i/N`` spec into ``(index, count)``."""
    try:
        index_text, count_text = spec.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ValueError(
            f"--shard must look like i/N, e.g. 0/2 (got {spec!r})"
        ) from None
    if count < 1 or not 0 <= index < count:
        raise ValueError(
            f"--shard index out of range: {spec!r} needs 0 <= i < N"
        )
    return index, count


def _shard_predicate(args, schema):
    """Row filter for ``serve-master --shard i/N``, or ``None``.

    Keeps exactly the rows the fleet's routing hash places on this shard,
    so N filtered servers together hold each master row exactly once —
    and a ``ShardedStore`` coordinator with the same ``--route-attrs``
    finds every row where it probes.
    """
    spec = getattr(args, "shard", None)
    if not spec:
        return None
    from repro.engine.sharded import shard_of

    index, count = _parse_shard_spec(spec)
    route_attrs = _parse_route_attrs(args) or (schema.attributes[0],)
    positions = [schema.index_of(attr) for attr in route_attrs]

    def keep(row) -> bool:
        return shard_of(
            (row.values[p] for p in positions), count
        ) == index

    return keep


def _parse_route_attrs(args):
    """The comma-separated ``--route-attrs`` list, or ``None``."""
    text = getattr(args, "route_attrs", None)
    if not text:
        return None
    attrs = tuple(a.strip() for a in text.split(",") if a.strip())
    return attrs or None


def _load_master_store(args):
    """Build the master backend the user asked for.

    ``memory`` materializes the CSV as a Relation behind an
    :class:`~repro.engine.store.InMemoryStore`; ``sqlite`` streams it
    straight into a :class:`~repro.engine.store.SqliteStore` (on disk when
    ``--sqlite-path`` is given, else a private in-memory database), so the
    master never has to fit in RAM; ``remote`` opens a
    :class:`~repro.engine.remote.RemoteStore` read-through client against
    a running ``serve-master`` instance (``--master-url``) — no master
    file is read locally at all; ``sharded`` fans out over N such servers
    (``--shard-urls``) behind a scatter-gather
    :class:`~repro.engine.sharded.ShardedStore` coordinator.

    ``serve-master --shard i/N`` additionally filters the memory/sqlite
    load down to this shard's rows (see :func:`_shard_predicate`).
    """
    if args.master_backend == "sharded":
        from repro.engine.remote import RemoteStore
        from repro.engine.sharded import ShardedStore

        urls = getattr(args, "shard_urls", None) or []
        if not urls:
            raise ValueError(
                "--master-backend sharded needs --shard-urls, one URL per "
                "running `serve-master --shard i/N` process (shard order "
                "must match the i/N numbering)"
            )
        if args.master:
            raise ValueError(
                "--master and --master-backend sharded are mutually "
                "exclusive: the shard servers own the master data"
            )
        clients = [
            RemoteStore(
                url,
                poll_interval=args.master_poll,
                probe_cache_size=args.probe_cache_size,
            )
            for url in urls
        ]
        # track_order=False: exact global iteration order would need a
        # full fleet sweep at startup; shard-major order repairs
        # identically (equal rows co-locate).
        return ShardedStore(
            clients,
            route_attrs=_parse_route_attrs(args),
            track_order=False,
            retries=args.shard_retries,
            backoff=args.shard_backoff,
        )
    if args.master_backend == "remote":
        from repro.engine.remote import RemoteStore

        if not args.master_url:
            raise ValueError(
                "--master-backend remote needs --master-url "
                "(e.g. http://127.0.0.1:8787, see `serve-master`)"
            )
        if args.master:
            raise ValueError(
                "--master and --master-backend remote are mutually "
                "exclusive: the remote server owns the master data"
            )
        return RemoteStore(
            args.master_url,
            poll_interval=args.master_poll,
            probe_cache_size=args.probe_cache_size,
        )
    if not args.master:
        raise ValueError(
            f"--master is required with --master-backend {args.master_backend}"
        )
    if args.master_backend == "sqlite":
        from repro.engine.csvio import stream_rows_from_csv
        from repro.engine.store import SqliteStore

        stream = stream_rows_from_csv(args.master)
        keep = _shard_predicate(args, stream.schema)
        rows = stream if keep is None else (
            row for row in stream if keep(row)
        )
        # fresh=True: the CSV is the source of truth; re-running against an
        # existing --sqlite-path must rebuild, not append to, the table.
        return SqliteStore(
            stream.schema, rows, path=args.sqlite_path, fresh=True,
            probe_cache_size=args.probe_cache_size,
        )
    relation = relation_from_csv(args.master)
    keep = _shard_predicate(args, relation.schema)
    if keep is None:
        return relation
    from repro.engine.relation import Relation

    return Relation(
        relation.schema, [row for row in relation.iter_rows() if keep(row)]
    )


def _count_csv_data_rows(path) -> int:
    """Non-blank line count minus the header — the --progress ETA total.

    An approximation (a quoted field containing a newline would overcount),
    which is fine for a heartbeat denominator; returns ``None`` on any
    read failure so progress degrades to the unknown-total display and the
    real error surfaces from the actual CSV parse.
    """
    try:
        with open(path, "rb") as handle:
            total = sum(1 for line in handle if line.strip())
    except OSError:
        return None
    return max(total - 1, 0)


def _cmd_batch_repair(args) -> int:
    from repro.engine.store import StoreError, as_master_store
    from repro.obs import ProgressReporter
    from repro.repair.batch import BatchRepairEngine
    from repro.repair.certainfix import IncompleteFix, ValidationFailed

    progress = None
    if args.progress:
        progress = ProgressReporter(
            label="batch-repair",
            total=_count_csv_data_rows(args.input),
            interval=args.progress_interval,
        )
    try:
        master = as_master_store(_load_master_store(args))
        with open(args.rules, encoding="utf-8") as handle:
            rules = rule_io.loads(handle.read())
        workers = args.workers if args.workers is not None else args.concurrency
        engine = BatchRepairEngine(
            rules,
            master,
            master.schema,  # same-schema deployments (R = Rm), as in Sect. 6
            use_bdd=not args.no_bdd,
            memoize=not args.no_memoize,
            chunk_size=args.chunk_size,
            executor=args.executor,
            concurrency=workers,
            mp_start_method=args.start_method,
            on_incomplete=args.on_incomplete,
            preflight=args.preflight,
            max_rounds=args.max_rounds,
        )
        with engine:
            result = engine.run_csv(
                args.input, clean_path=args.clean, progress=progress
            )
    except IncompleteFix as exc:
        print(f"error: {exc}", file=sys.stderr)
        print("hint: raise --max-rounds, or use --on-incomplete keep to "
              "get the truncated sessions", file=sys.stderr)
        return 2
    except StoreError as exc:
        # Master-store infrastructure failure (unreachable server, closed
        # connection, vanished database file); the message carries its own
        # remedy, and a mid-run failure attaches the partial report.
        print(f"error: {exc}", file=sys.stderr)
        report = getattr(exc, "report", None)
        if report is not None and report.tuples:
            print(f"(failed after {report.tuples} monitored tuples)",
                  file=sys.stderr)
        return 2
    except (ValueError, ValidationFailed) as exc:
        # Malformed input files (bad header, ragged row, invalid rules
        # JSON, misaligned clean file), no certain region for (Σ, Dm), or
        # clean values that keep conflicting with master data.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(result.report.describe())

    if args.output:
        relation_to_csv(result.to_relation(master.schema), args.output)
        print(f"wrote {result.report.tuples} repaired rows to {args.output}")
    if args.report:
        payload = result.report.to_dict()
        # Backend-side accounting rides along when the store keeps any:
        # LRU hit/miss/eviction/purge counts (sqlite, remote) and the
        # remote client's transport + delta-reconciliation counters.
        if hasattr(master, "probe_cache_info"):
            payload["probe_cache"] = master.probe_cache_info()
        if hasattr(master, "connection_info"):
            payload["connection"] = master.connection_info()
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote report to {args.report}")
    return 0 if result.report.incomplete == 0 else 2


def _cmd_serve_master(args) -> int:
    from repro.engine.remote import MasterServer
    from repro.engine.store import as_master_store

    try:
        store = as_master_store(_load_master_store(args))
    except (ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = MasterServer(store, host=args.host, port=args.port)
    print(f"serving {store!r}")
    if getattr(args, "shard", None):
        print(f"  shard: {args.shard} of the master (fleet member)")
    print(f"  url: {server.url}")
    print(f"  metrics: {server.url}/metrics (Prometheus text; "
          f"?format=json for JSON)")
    if getattr(args, "shard", None):
        print("  point a coordinator at the full fleet with: batch-repair "
              "--master-backend sharded --shard-urls <url0> <url1> ...")
    else:
        print(f"  point clients at it with: batch-repair --master-backend "
              f"remote --master-url {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.close()
    return 0


def _cmd_metrics(args) -> int:
    """Scrape a running ``serve-master``'s ``/metrics`` endpoint."""
    from urllib.error import URLError
    from urllib.request import urlopen

    url = args.master_url.rstrip("/") + "/metrics"
    if args.format == "json":
        url += "?format=json"
    try:
        with urlopen(url, timeout=args.timeout) as response:
            body = response.read().decode("utf-8")
    except (URLError, OSError, ValueError) as exc:
        print(f"error: cannot scrape {url}: {exc}", file=sys.stderr)
        print("hint: is `python -m repro serve-master` running there?",
              file=sys.stderr)
        return 2
    if args.format == "json":
        print(json.dumps(json.loads(body)["metrics"], indent=2))
    else:
        sys.stdout.write(body)
    return 0


def _cmd_demo(args) -> int:
    from repro.core.fixes import chase
    from repro.datasets import make_running_example

    ex = make_running_example()
    out = chase(ex.inputs["t1"], ("zip", "phn", "type"), ex.rules, ex.master)
    print("The paper's running example - fixing tuple t1:")
    print(out.explain())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Certain fixes with editing rules and master data "
                    "(Fan et al., VLDB 2010) - reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="vet a rule file against master data")
    analyze.add_argument("--rules", required=True, help="rules JSON file")
    analyze.add_argument("--master", required=True, help="master data CSV")
    analyze.add_argument("--validate-patterns", type=int, default=32)
    analyze.set_defaults(func=_cmd_analyze)

    mine = sub.add_parser("mine", help="discover rules from master data")
    mine.add_argument("--master", required=True, help="master data CSV")
    mine.add_argument("--output", required=True, help="rules JSON to write")
    mine.add_argument("--max-key", type=int, default=2)
    mine.add_argument("--min-selectivity", type=float, default=0.01)
    mine.add_argument("--show", type=int, default=10)
    mine.add_argument(
        "--lint", action=argparse.BooleanOptionalAction, default=True,
        help="lint discovered rules before writing; error-level findings "
             "fail the command (--no-lint skips the check)",
    )
    mine.set_defaults(func=_cmd_mine)

    lint = sub.add_parser(
        "lint",
        help="statically analyze a rule file against a master backend",
    )
    lint.add_argument("--rules", required=True, help="rules JSON file")
    lint.add_argument(
        "--master",
        help="master data CSV (required for the memory and sqlite "
             "backends; not used with --master-backend remote)",
    )
    lint.add_argument(
        "--master-backend", choices=("memory", "sqlite", "remote"),
        default="memory",
        help="master-data backend the master-aware passes probe (same "
             "choices as batch-repair)",
    )
    lint.add_argument(
        "--sqlite-path",
        help="with --master-backend sqlite: database file to use "
             "(default: private in-memory database)",
    )
    lint.add_argument(
        "--master-url",
        help="with --master-backend remote: base URL of the master server",
    )
    lint.add_argument(
        "--master-poll", type=float, default=None, metavar="SECONDS",
        help="with --master-backend remote: version re-poll interval",
    )
    lint.add_argument(
        "--probe-cache-size", type=int, default=4096, metavar="LINES",
        help="with the sqlite and remote backends: LRU probe-cache bound "
             "(0 disables caching; default: 4096)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="report rendering (default: text)",
    )
    lint.add_argument(
        "--fail-on", choices=("error", "warning", "info"), default="error",
        help="exit 1 when findings at/above this severity exist "
             "(default: error)",
    )
    lint.add_argument(
        "--output",
        help="write the rendered report to this file instead of stdout "
             "(the summary still prints; used for CI SARIF artifacts)",
    )
    lint.add_argument(
        "--fix", action="store_true",
        help="apply machine fix-its (remove_rule from W103/W104/W108, "
             "extend_region from I208) to --rules in place, re-linting "
             "until a fixed point, then report on the fixed file",
    )
    lint.set_defaults(func=_cmd_lint)

    batch = sub.add_parser(
        "batch-repair",
        help="stream a dirty CSV through the batch repair engine",
    )
    batch.add_argument("--rules", required=True, help="rules JSON file")
    batch.add_argument(
        "--master",
        help="master data CSV (required for the memory and sqlite "
             "backends; not used with --master-backend remote)",
    )
    batch.add_argument("--input", required=True, help="dirty input CSV")
    batch.add_argument(
        "--clean", required=True,
        help="ground-truth CSV aligned row-for-row with --input; plays the "
             "truthful simulated user (programmatic callers may supply any "
             "oracle via BatchRepairEngine.run_csv instead)",
    )
    batch.add_argument("--output", help="repaired rows CSV to write")
    batch.add_argument("--report", help="JSON throughput report to write")
    batch.add_argument(
        "--master-backend", choices=("memory", "sqlite", "remote", "sharded"),
        default="memory",
        help="master-data backend: 'memory' (Relation + hash indexes), "
             "'sqlite' (out-of-core indexed tables with an LRU probe "
             "cache), 'remote' (read-through HTTP client against a "
             "`serve-master` instance; see --master-url), or 'sharded' "
             "(scatter-gather coordinator over N shard servers; see "
             "--shard-urls)",
    )
    batch.add_argument(
        "--shard-urls", nargs="+", metavar="URL",
        help="with --master-backend sharded: base URLs of the N "
             "`serve-master --shard i/N` processes, in i/N order",
    )
    batch.add_argument(
        "--route-attrs", metavar="ATTRS",
        help="with --master-backend sharded: comma-separated routing "
             "attributes; must match the --route-attrs the shard servers "
             "were filtered with (default: the schema's first attribute)",
    )
    batch.add_argument(
        "--shard-retries", type=int, default=3, metavar="N",
        help="with --master-backend sharded: replay an idempotent shard "
             "read up to N times with exponential backoff before raising "
             "(default: 3; mutations are never replayed)",
    )
    batch.add_argument(
        "--shard-backoff", type=float, default=0.25, metavar="SECONDS",
        help="with --master-backend sharded: initial retry backoff, "
             "doubling per attempt, capped at 2s (default: 0.25)",
    )
    batch.add_argument(
        "--sqlite-path",
        help="with --master-backend sqlite: database file to use "
             "(default: private in-memory database)",
    )
    batch.add_argument(
        "--master-url",
        help="with --master-backend remote: base URL of the master server "
             "(e.g. http://127.0.0.1:8787)",
    )
    batch.add_argument(
        "--master-poll", type=float, default=None, metavar="SECONDS",
        help="with --master-backend remote: re-poll the server version on "
             "reads at most every SECONDS (0 = every read; default: only "
             "observe versions piggybacked on this client's own requests — "
             "enough when mutations flow through this process)",
    )
    batch.add_argument(
        "--probe-cache-size", type=int, default=4096, metavar="LINES",
        help="with the sqlite and remote backends: LRU probe-cache bound "
             "(0 disables caching; default: 4096).  Eviction and per-key "
             "purge counts surface in the JSON --report and on /metrics",
    )
    batch.add_argument("--chunk-size", type=int, default=256)
    batch.add_argument(
        "--executor", choices=("thread", "process"), default="thread",
        help="fan-out strategy: 'thread' shares one engine and its caches "
             "(best for I/O-bound oracles), 'process' rehydrates an engine "
             "per worker to sidestep the GIL (best for CPU-bound oracles; "
             "with --master-backend sqlite requires --sqlite-path)",
    )
    batch.add_argument(
        "--workers", type=int, default=None,
        help="workers for the chosen executor (alias of --concurrency; "
             "this spelling wins when both are given)",
    )
    batch.add_argument(
        "--start-method", choices=("fork", "spawn", "forkserver"),
        default=None,
        help="with --executor process: the multiprocessing start method "
             "(default: platform default)",
    )
    batch.add_argument("--concurrency", type=int, default=1)
    batch.add_argument("--max-rounds", type=int, default=12)
    batch.add_argument(
        "--on-incomplete", choices=("keep", "raise"), default="keep",
        help="policy for sessions that exhaust --max-rounds",
    )
    batch.add_argument(
        "--preflight", choices=("error", "warn", "off", "certify"),
        default="error",
        help="lint gate before precompute: 'error' refuses rule programs "
             "with error-level structural findings, 'warn' prints findings "
             "and continues, 'off' skips linting, 'certify' additionally "
             "runs the exact master-aware certification (E205/W206/I208) "
             "and refuses provably inconsistent programs",
    )
    batch.add_argument("--no-bdd", action="store_true",
                       help="disable the shared Suggest+ BDD cache")
    batch.add_argument("--no-memoize", action="store_true",
                       help="disable validated-pattern memoization")
    batch.add_argument(
        "--progress", action="store_true",
        help="print live heartbeat lines to stderr while monitoring "
             "(tuples/s, ETA, cache hit rates, per-worker throughput)",
    )
    batch.add_argument(
        "--progress-interval", type=float, default=1.0, metavar="SECONDS",
        help="minimum seconds between --progress heartbeats (default: 1.0)",
    )
    batch.set_defaults(func=_cmd_batch_repair)

    serve = sub.add_parser(
        "serve-master",
        help="expose a master CSV as an HTTP master server",
    )
    serve.add_argument("--master", required=True, help="master data CSV")
    serve.add_argument(
        "--master-backend", choices=("memory", "sqlite"), default="memory",
        help="backing store for the served master (remote clients see the "
             "same API either way)",
    )
    serve.add_argument(
        "--sqlite-path",
        help="with --master-backend sqlite: database file to use "
             "(default: private in-memory database)",
    )
    serve.add_argument(
        "--probe-cache-size", type=int, default=4096, metavar="LINES",
        help="with --master-backend sqlite: LRU probe-cache bound for the "
             "served store (0 disables caching; default: 4096)",
    )
    serve.add_argument(
        "--shard", metavar="i/N",
        help="serve only this shard of the master: keep the CSV rows the "
             "fleet routing hash places on shard i of N (run N such "
             "processes, one per i, and point a `batch-repair "
             "--master-backend sharded` coordinator at all of them)",
    )
    serve.add_argument(
        "--route-attrs", metavar="ATTRS",
        help="with --shard: comma-separated routing attributes; must "
             "match the coordinator's --route-attrs (default: the "
             "schema's first attribute)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: loopback only)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (0 = ephemeral, printed at startup)")
    serve.set_defaults(func=_cmd_serve_master)

    metrics = sub.add_parser(
        "metrics",
        help="scrape a running serve-master's /metrics endpoint",
    )
    metrics.add_argument(
        "--master-url", required=True,
        help="base URL of the master server (e.g. http://127.0.0.1:8787)",
    )
    metrics.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="'text' prints the Prometheus exposition verbatim; 'json' "
             "pretty-prints the lossless snapshot (default: text)",
    )
    metrics.add_argument("--timeout", type=float, default=10.0,
                         help="scrape timeout in seconds")
    metrics.set_defaults(func=_cmd_metrics)

    demo = sub.add_parser("demo", help="run the paper's running example")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
