"""IncRep: the CFD-based heuristic repair baseline (Cong et al., [14]).

The paper's Exp-1(7) compares CertainFix against IncRep, "a heuristic method
to make D consistent, i.e., finds a repair D' that satisfies the constraints
and 'minimally' differs from D", using a cost metric over attribute weights
and value distances.  This module reconstructs the algorithm's core for the
monitoring setting (per-tuple repair against master data; DESIGN.md §4.5):

* **violation detection** — for each editing-rule-derived dependency, a
  tuple is in violation when it exactly matches a master tuple's key but
  disagrees on the target, or when a multi-attribute key *nearly* matches
  (all but one attribute) — the CFD resolution step of [14] where either
  side of the dependency may be modified.  A non-matching key is *not* a
  violation (the compiled constant CFDs simply do not apply), so no repair
  is invented for it;
* **resolution** — candidate modifications are "copy the master target" or
  "fix the mismatched key attribute"; the minimum-cost candidate
  (``weight × normalized edit distance``) is applied; repaired attributes
  are frozen so resolution terminates.

IncRep repairs the whole tuple without certainty guarantees: under noise it
picks wrong resolutions (precision < 1), which is precisely the behaviour
Fig. 11(c)/(f) contrasts with CertainFix's 100% precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.constraints.distance import normalized_distance
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.tuples import Row


@dataclass
class Candidate:
    """One candidate value modification.

    ``tier`` orders evidence strength (1 = full-key match, 2 = near match,
    3 = target-anchored); ``support`` counts how many attributes of the
    input tuple agree with the proposing master tuple — the confidence side
    of [14]'s cost model (a modification corroborated by most of the tuple
    beats one corroborated by a single attribute).
    """

    attr: str
    value: object
    cost: float
    via_rule: str
    tier: int = 1
    support: int = 0


@dataclass
class RepairResult:
    """Output of one IncRep run."""

    row: Row
    changed: dict = field(default_factory=dict)
    iterations: int = 0

    @property
    def changed_attrs(self) -> frozenset:
        return frozenset(self.changed)


class IncRep:
    """Cost-based per-tuple repair against master data.

    Parameters
    ----------
    rules, master, schema:
        The same inputs CertainFix consumes; dependencies are derived from
        the rules so both systems see the same signal.
    weights:
        Optional per-attribute modification weights (default 1.0).
    max_iterations:
        Safety bound on the resolve loop (each iteration freezes one
        attribute, so ``|R|`` suffices).
    """

    def __init__(
        self,
        rules: Sequence,
        master: Relation,
        schema: RelationSchema,
        weights: dict = None,
        max_iterations: int = None,
    ):
        self.rules = list(rules)
        self.master = master
        self.schema = schema
        self.weights = dict(weights or {})
        self.max_iterations = max_iterations or len(schema)
        for rule in self.rules:
            master.index_on(rule.lhs_m)

    def _weight(self, attr: str) -> float:
        return self.weights.get(attr, 1.0)

    def _support(self, row: Row, tm: Row) -> int:
        """Attributes of the input tuple agreeing with a master tuple."""
        shared = (
            row.schema.attributes
            if row.schema.attributes == tm.schema.attributes
            else tuple(a for a in row.schema.attributes if a in tm.schema)
        )
        return sum(1 for a in shared if row[a] == tm[a])

    # -- candidate generation --------------------------------------------------

    def _candidates(self, row: Row, frozen: set) -> list:
        out = []
        for rule in self.rules:
            if not rule.pattern.matches(row):
                continue
            key = row[rule.lhs]
            # Exact key match: violation iff the target disagrees (and the
            # master evidence agrees on what it should be).
            matches = self.master.lookup(rule.lhs_m, key)
            if len(rule.master_guard):
                matches = [tm for tm in matches
                           if rule.master_guard.matches(tm)]
            if matches and rule.rhs not in frozen:
                value = matches[0][rule.rhs_m]
                if (
                    row[rule.rhs] != value
                    and all(tm[rule.rhs_m] == value for tm in matches[1:])
                ):
                    out.append(
                        Candidate(
                            attr=rule.rhs,
                            value=value,
                            cost=self._weight(rule.rhs)
                            * normalized_distance(row[rule.rhs], value),
                            via_rule=rule.name,
                            tier=1,
                            support=self._support(row, matches[0]),
                        )
                    )
            # Near match (all key attributes but one): either the mismatched
            # key attribute or the target may be dirty - offer both sides.
            if len(rule.lhs) >= 2:
                out.extend(self._near_matches(rule, row, frozen))
        return out

    def _near_matches(self, rule, row: Row, frozen: set) -> list:
        """All-but-one key matches: fix the mismatched key attribute.

        Applied only when the evidence is unambiguous — every master tuple
        matching the kept key attributes must agree on the skipped one
        (otherwise any pick would be a guess, which [14]'s cost model never
        prefers over cheaper certain resolutions).
        """
        out = []
        for skip_index, skipped in enumerate(rule.lhs):
            if skipped in frozen:
                continue
            kept = tuple(
                a for i, a in enumerate(rule.lhs) if i != skip_index
            )
            kept_m = tuple(
                m for i, m in enumerate(rule.lhs_m) if i != skip_index
            )
            key = row[kept]
            matches = self.master.lookup(kept_m, key)
            if len(rule.master_guard):
                matches = [tm for tm in matches
                           if rule.master_guard.matches(tm)]
            if not matches:
                continue
            skipped_m = rule.master_attr_of(skipped)
            value = matches[0][skipped_m]
            if any(tm[skipped_m] != value for tm in matches[1:]):
                continue  # ambiguous evidence
            if row[skipped] == value:
                continue  # exact match, already handled
            out.append(
                Candidate(
                    attr=skipped,
                    value=value,
                    cost=self._weight(skipped)
                    * normalized_distance(row[skipped], value),
                    via_rule=rule.name,
                    tier=2,
                    support=self._support(row, matches[0]),
                )
            )
        return out

    # -- the resolve loop ----------------------------------------------------------

    def repair(self, t: Row) -> RepairResult:
        """Repair one tuple: apply minimum-cost resolutions to a fixpoint."""
        row = t
        frozen: set = set()
        changed: dict = {}
        iterations = 0
        while iterations < self.max_iterations:
            iterations += 1
            candidates = self._candidates(row, frozen)
            if not candidates:
                break
            best = min(
                candidates,
                key=lambda c: (c.tier, -c.support, c.cost, c.attr, repr(c.value)),
            )
            if row[best.attr] == best.value:
                frozen.add(best.attr)
                continue
            row = row.with_values({best.attr: best.value})
            changed[best.attr] = best.value
            frozen.add(best.attr)
        return RepairResult(row=row, changed=changed, iterations=iterations)
