"""Edit distance and the repair cost model of [14].

IncRep picks, among the candidate value modifications resolving a violation,
the one minimizing ``weight(attribute) × dist(old, new)`` where ``dist`` is
the normalized Levenshtein distance ("a metric to minimize the distance
between the original values and the new values of changed attributes and the
weights of the attributes modified").
"""

from __future__ import annotations

from repro.engine.values import NULL, UNKNOWN


def levenshtein(a: str, b: str) -> int:
    """Classical Levenshtein edit distance (iterative, two rows)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            insert = current[j - 1] + 1
            delete = previous[j] + 1
            substitute = previous[j - 1] + (ca != cb)
            current.append(min(insert, delete, substitute))
        previous = current
    return previous[-1]


def normalized_distance(old, new) -> float:
    """Distance in ``[0, 1]``: 0 for equal values, 1 for a full rewrite.

    NULL / UNKNOWN old values cost nothing to overwrite (filling a missing
    value is free in [14]'s model).
    """
    if old == new:
        return 0.0
    if old is NULL or old is UNKNOWN:
        return 0.0
    a, b = str(old), str(new)
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest
