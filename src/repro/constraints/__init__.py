"""Constraint substrate: FDs, CFDs and the IncRep repair baseline.

The paper's Example 1 motivates editing rules by contrasting them with
conditional functional dependencies (CFDs [19]), and its evaluation compares
against ``IncRep``, the CFD-based heuristic repair algorithm of Cong et al.
(VLDB 2007 [14]).  This subpackage implements that substrate from scratch:

* :mod:`repro.constraints.fd` — classical functional dependencies;
* :mod:`repro.constraints.cfd` — CFDs with pattern tableaux, constant and
  variable, plus violation detection;
* :mod:`repro.constraints.distance` — edit distance and the cost model;
* :mod:`repro.constraints.increp` — the cost-based value-modification
  repair (reconstruction documented in DESIGN.md §4.5).
"""

from repro.constraints.cfd import CFD, cfds_from_rules, tuple_violations
from repro.constraints.distance import levenshtein, normalized_distance
from repro.constraints.fd import FD
from repro.constraints.increp import IncRep, RepairResult

__all__ = [
    "CFD",
    "FD",
    "IncRep",
    "RepairResult",
    "cfds_from_rules",
    "levenshtein",
    "normalized_distance",
    "tuple_violations",
]
