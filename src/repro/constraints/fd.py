"""Classical functional dependencies ``X → Y``.

Used to verify that the synthetic master data satisfies the key structure
the editing rules assume (master data "can be assumed consistent and
complete", Sect. 2), and as the degenerate case of CFDs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.engine.relation import Relation


class FD:
    """A functional dependency ``X → Y`` over one relation schema."""

    def __init__(self, lhs: Sequence, rhs: Sequence, name: str = None):
        self.lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        self.rhs = (rhs,) if isinstance(rhs, str) else tuple(rhs)
        if not self.lhs or not self.rhs:
            raise ValueError("an FD needs non-empty attribute lists")
        self.name = name or f"{','.join(self.lhs)}->{','.join(self.rhs)}"

    def holds(self, relation: Relation) -> bool:
        return not self.violations(relation)

    def violations(self, relation: Relation) -> list:
        """Pairs of rows agreeing on X but not on Y (first witness per key)."""
        seen: dict = {}
        out = []
        for row in relation:
            key = row[self.lhs]
            value = row[self.rhs]
            if key in seen:
                if seen[key][0] != value:
                    out.append((seen[key][1], row))
            else:
                seen[key] = (value, row)
        return out

    def __repr__(self) -> str:
        return f"FD({self.name})"


def all_hold(fds: Iterable, relation: Relation) -> bool:
    """Whether every FD in *fds* holds on *relation*."""
    return all(fd.holds(relation) for fd in fds)
