"""Conditional functional dependencies (CFDs, [19]) and violation detection.

A CFD ``ψ = (X → B, tp)`` pairs an FD with a pattern tuple over ``X ∪ {B}``
of constants and wildcards.  When ``tp[B]`` is a constant the CFD is
*constant* and a single tuple can violate it (``t`` matches ``tp[X]`` but
``t[B] ≠ tp[B]``); otherwise it is *variable* and violations are tuple pairs.

Example 1 of the paper uses the constant CFDs "AC = 020 → city = Ldn" and
"AC = 131 → city = Edi"; the IncRep baseline consumes CFDs compiled from the
same editing rules and master data (:func:`cfds_from_rules`), so the two
repair approaches see the same signal.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.patterns import Const, PatternTuple
from repro.engine.relation import Relation
from repro.engine.tuples import Row


class CFD:
    """A conditional functional dependency ``(X → B, tp[X ∪ {B}])``."""

    def __init__(self, lhs: Sequence, rhs: str, pattern: PatternTuple,
                 name: str = None):
        self.lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        self.rhs = rhs
        if rhs in self.lhs:
            raise ValueError(f"rhs {rhs!r} must not occur in lhs {self.lhs}")
        for attr in self.lhs + (rhs,):
            if attr not in pattern:
                raise ValueError(
                    f"pattern must cover X and B; missing {attr!r}"
                )
        self.pattern = pattern
        self.name = name or f"cfd:{','.join(self.lhs)}->{rhs}"

    @property
    def is_constant(self) -> bool:
        return self.pattern[self.rhs].is_constant

    def lhs_matches(self, row: Row) -> bool:
        return all(self.pattern[a].matches(row[a]) for a in self.lhs)

    def single_tuple_violation(self, row: Row) -> bool:
        """Constant-CFD check: pattern lhs matches but rhs constant differs."""
        if not self.is_constant:
            return False
        return self.lhs_matches(row) and not self.pattern[self.rhs].matches(
            row[self.rhs]
        )

    def pair_violation(self, row1: Row, row2: Row) -> bool:
        """Variable-CFD check on a tuple pair."""
        if self.is_constant:
            return False
        if not (self.lhs_matches(row1) and self.lhs_matches(row2)):
            return False
        return (
            row1[self.lhs] == row2[self.lhs]
            and row1[self.rhs] != row2[self.rhs]
        )

    def violations(self, relation: Relation) -> list:
        """All violations in a relation (tuples or pairs)."""
        out = []
        if self.is_constant:
            for row in relation:
                if self.single_tuple_violation(row):
                    out.append((row,))
            return out
        seen: dict = {}
        for row in relation:
            if not self.lhs_matches(row):
                continue
            key = row[self.lhs]
            if key in seen:
                if seen[key][self.rhs] != row[self.rhs]:
                    out.append((seen[key], row))
            else:
                seen[key] = row
        return out

    def __repr__(self) -> str:
        return f"CFD({self.name}, {self.pattern!r})"


def tuple_violations(row: Row, cfds: Iterable) -> list:
    """Constant CFDs violated by a single tuple."""
    return [c for c in cfds if c.single_tuple_violation(row)]


def cfds_from_rules(rules: Iterable, master: Relation,
                    max_per_rule: int = None) -> list:
    """Compile editing rules + master data into constant CFDs.

    Each ``(rule, master tuple)`` pair yields the constant CFD
    ``(X ∪ Xp → B, (tm[Xm] .. pattern constants .. tm[Bm]))``: exactly the
    condition a clean tuple agreeing with that master tuple must satisfy.
    Used to feed the IncRep baseline the same signal the editing rules see.
    """
    out = []
    for rule in rules:
        count = 0
        seen = set()
        for tm in master:
            if not all(
                rule.pattern[a].matches(tm[rule.master_attr_of(a)])
                for a in rule.pattern.attrs
                if a in rule.lhs and not rule.pattern[a].is_wildcard
            ):
                continue
            key = tm[rule.lhs_m] + (tm[rule.rhs_m],)
            if key in seen:
                continue
            seen.add(key)
            conditions = {
                a: Const(v) for a, v in zip(rule.lhs, tm[rule.lhs_m])
            }
            for a in rule.pattern.attrs:
                if a not in conditions:
                    conditions[a] = rule.pattern[a]
            conditions[rule.rhs] = Const(tm[rule.rhs_m])
            lhs = tuple(conditions)
            lhs = tuple(a for a in lhs if a != rule.rhs)
            out.append(
                CFD(
                    lhs,
                    rule.rhs,
                    PatternTuple(conditions),
                    name=f"{rule.name}@{count}",
                )
            )
            count += 1
            if max_per_rule is not None and count >= max_per_rule:
                break
    return out
