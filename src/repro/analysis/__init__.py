"""Static analyses of editing rules (Sect. 4 of the paper).

* :mod:`repro.analysis.active_domain` — active domains and fresh values
  (the ``dom`` construction in the proof of Theorem 1).
* :mod:`repro.analysis.chase` — exhaustive order-exploring chase, the
  ground-truth oracle for the batched checker of :mod:`repro.core.fixes`.
* :mod:`repro.analysis.closure` — attribute-level closure / one-hop covers.
* :mod:`repro.analysis.consistency` — the consistency problem (Thm. 1/4).
* :mod:`repro.analysis.coverage` — the coverage problem / certain regions
  (Thm. 2/4).
* :mod:`repro.analysis.direct_fixes` — PTIME checks for direct fixes via
  SQL-style queries (Thm. 5).
* :mod:`repro.analysis.zproblems` — Z-validating, Z-counting, Z-minimum
  (Thms. 6/9/12, Props. 8/11/15) with exact and greedy solvers.
* :mod:`repro.analysis.dependency_graph` — the rule dependency graph
  (Sect. 5.1).
"""

from repro.analysis.active_domain import (
    ActiveDomainCache,
    FreshValue,
    attribute_active_domain,
    global_active_domain,
    instantiate_condition,
    read_attrs,
)
from repro.analysis.chase import ExploreResult, explore_fixes
from repro.analysis.closure import (
    attribute_closure,
    mandatory_attrs,
    one_hop_cover,
)
from repro.analysis.consistency import (
    AnalysisExplosion,
    PatternCheck,
    RegionReport,
    check_pattern,
    check_region,
    is_consistent,
)
from repro.analysis.coverage import coverage_report, is_certain_region
from repro.analysis.dependency_graph import DependencyGraph
from repro.analysis.direct_fixes import (
    direct_consistency_queries,
    is_direct_consistent,
    is_direct_certain_region,
)
from repro.analysis.zproblems import (
    z_counting,
    z_minimum_exact,
    z_minimum_greedy,
    z_validating,
)

__all__ = [
    "ActiveDomainCache",
    "AnalysisExplosion",
    "DependencyGraph",
    "ExploreResult",
    "FreshValue",
    "PatternCheck",
    "RegionReport",
    "attribute_active_domain",
    "attribute_closure",
    "check_pattern",
    "check_region",
    "coverage_report",
    "direct_consistency_queries",
    "explore_fixes",
    "global_active_domain",
    "instantiate_condition",
    "is_certain_region",
    "is_consistent",
    "is_direct_certain_region",
    "is_direct_consistent",
    "mandatory_attrs",
    "one_hop_cover",
    "read_attrs",
    "z_counting",
    "z_minimum_exact",
    "z_minimum_greedy",
    "z_validating",
]
