"""The consistency problem (Sect. 4.1, Theorems 1 and 4).

``(Σ, Dm)`` is *consistent relative to* ``(Z, Tc)`` iff every tuple marked by
the region has a unique fix.  For a concrete tableau this is PTIME: chase
each pattern tuple with the batched confluence checker.  For tableaux with
wildcards or negations the problem is coNP-complete; following the proof of
Theorem 4 we instantiate the non-constant pattern positions over
(per-attribute) active domains plus fresh witnesses and check each concrete
instance — exponential in the number of instantiated positions, so a guard
(`max_instantiations`) protects callers, in line with the paper's hardness
results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.active_domain import (
    ActiveDomainCache,
    instantiate_condition,
    read_attrs,
)
from repro.core.fixes import ChaseOutcome, Conflict, chase
from repro.core.patterns import PatternTuple
from repro.core.regions import Region
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.values import UNKNOWN


class AnalysisExplosion(RuntimeError):
    """The instantiation space exceeds the caller's budget.

    Expected for adversarial inputs: the underlying problems are
    coNP-complete (Theorems 1 and 2).  Use a concrete tableau, the
    direct-fix analyses, or raise the budget.
    """


@dataclass
class PatternCheck:
    """Verdict for one pattern tuple of a region's tableau."""

    pattern: PatternTuple
    consistent: bool
    certain: bool
    instantiations: int
    conflict: Conflict = None
    witness_values: dict = None
    uncovered: tuple = ()

    def describe(self) -> str:
        status = "certain" if self.certain else (
            "consistent" if self.consistent else "inconsistent"
        )
        extra = ""
        if self.conflict is not None:
            extra = f" [{self.conflict.describe()}]"
        elif self.uncovered:
            extra = f" [uncovered: {list(self.uncovered)}]"
        return f"{self.pattern!r}: {status}{extra}"


@dataclass
class RegionReport:
    """Aggregated verdict for a whole region."""

    region: Region
    checks: list = field(default_factory=list)
    #: active-domain cache counters: {"computed": n, "reused": m}.  Reuse
    #: across pattern tuples (and across analyses sharing one cache) is the
    #: saved work; ``computed`` is bounded by the number of distinct attrs.
    domain_stats: dict = field(default_factory=dict)

    @property
    def consistent(self) -> bool:
        return all(c.consistent for c in self.checks)

    @property
    def certain(self) -> bool:
        return all(c.certain for c in self.checks)

    @property
    def total_instantiations(self) -> int:
        return sum(c.instantiations for c in self.checks)

    def first_conflict(self) -> Conflict:
        for c in self.checks:
            if c.conflict is not None:
                return c.conflict
        return None

    def describe(self) -> str:
        lines = [f"Region Z={list(self.region.attrs)}:"]
        lines.extend("  " + c.describe() for c in self.checks)
        return "\n".join(lines)


def _instantiation_space(
    pattern: PatternTuple,
    region_attrs: Sequence,
    rules: Sequence,
    master: Relation,
    schema: RelationSchema,
    domains: ActiveDomainCache = None,
):
    """Per-attribute concrete value choices for one pattern tuple.

    Only attributes the rules can read need instantiation; the rest are
    validated with an irrelevant value (``UNKNOWN``).  Active domains come
    from *domains* when given, so repeated pattern tuples share one scan of
    the master per attribute.
    """
    if domains is None:
        domains = ActiveDomainCache(rules, master)
    readable = read_attrs(rules)
    choices = []
    for attr in region_attrs:
        condition = pattern[attr]
        if attr not in readable:
            if condition.is_constant:
                choices.append((attr, [condition.value]))
            else:
                choices.append((attr, [UNKNOWN]))
            continue
        values = instantiate_condition(
            condition, domains.domain(attr), schema.domain_of(attr), attr
        )
        choices.append((attr, values))
    return choices


def check_pattern(
    rules: Sequence,
    master: Relation,
    region: Region,
    pattern: PatternTuple,
    schema: RelationSchema,
    max_instantiations: int = 200_000,
    domains: ActiveDomainCache = None,
) -> PatternCheck:
    """Check one pattern tuple: consistency and coverage of its instances."""
    rules = list(rules)
    choices = _instantiation_space(
        pattern, region.attrs, rules, master, schema, domains
    )

    space = 1
    for _, values in choices:
        space *= max(len(values), 1)
    if space > max_instantiations:
        raise AnalysisExplosion(
            f"pattern {pattern!r} instantiates to {space} concrete tuples "
            f"(> {max_instantiations}); the consistency/coverage problems "
            f"are coNP-complete for non-concrete tableaux (Theorems 1-2)"
        )

    # An unsatisfiable pattern marks no tuple: vacuously consistent & certain.
    if any(not values for _, values in choices):
        return PatternCheck(
            pattern=pattern, consistent=True, certain=True, instantiations=0
        )

    all_attrs = set(schema.attributes)
    attrs = [a for a, _ in choices]
    instantiations = 0
    for combo in itertools.product(*(values for _, values in choices)):
        instantiations += 1
        assignment = dict(zip(attrs, combo))
        outcome: ChaseOutcome = chase(assignment, region.attrs, rules, master)
        if not outcome.unique:
            return PatternCheck(
                pattern=pattern,
                consistent=False,
                certain=False,
                instantiations=instantiations,
                conflict=outcome.conflict,
                witness_values=assignment,
            )
        if not outcome.covered >= all_attrs:
            uncovered = tuple(
                a for a in schema.attributes if a not in outcome.covered
            )
            return PatternCheck(
                pattern=pattern,
                consistent=_remaining_consistent(
                    rules, master, region, choices, attrs, combo, instantiations,
                    max_instantiations,
                ),
                certain=False,
                instantiations=instantiations,
                witness_values=assignment,
                uncovered=uncovered,
            )
    return PatternCheck(
        pattern=pattern,
        consistent=True,
        certain=True,
        instantiations=instantiations,
    )


def _remaining_consistent(
    rules, master, region, choices, attrs, failed_combo, done, budget
) -> bool:
    """Finish the consistency half of a check after coverage already failed.

    Coverage failures do not imply inconsistency, so keep chasing the
    remaining instances (starting over is simplest and the space is already
    budgeted) looking only at uniqueness.
    """
    for combo in itertools.product(*(values for _, values in choices)):
        assignment = dict(zip(attrs, combo))
        outcome = chase(assignment, region.attrs, rules, master)
        if not outcome.unique:
            return False
    return True


def check_region(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
    max_instantiations: int = 200_000,
    domains: ActiveDomainCache = None,
) -> RegionReport:
    """Check every pattern tuple of the region (Theorem 4: one by one).

    One :class:`ActiveDomainCache` is shared across all pattern tuples (and
    with the caller's other analyses when *domains* is passed in); the
    report's ``domain_stats`` records the computed/reused split.
    """
    rules = list(rules)
    if domains is None:
        domains = ActiveDomainCache(rules, master)
    report = RegionReport(region=region)
    for pattern in region.tableau:
        report.checks.append(
            check_pattern(
                rules, master, region, pattern, schema, max_instantiations,
                domains,
            )
        )
    report.domain_stats = domains.stats()
    return report


def is_consistent(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
    max_instantiations: int = 200_000,
) -> bool:
    """Decide the consistency problem for ``(Σ, Dm)`` relative to ``(Z, Tc)``."""
    return check_region(
        rules, master, region, schema, max_instantiations
    ).consistent
