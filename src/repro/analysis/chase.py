"""Exhaustive order-exploring chase.

The batched checker of :func:`repro.core.fixes.chase` decides unique-fix
existence in PTIME.  This module provides the ground truth it is validated
against: explicitly enumerate *every* maximal fix sequence (every application
order of every applicable rule/master pair) and collect the set of distinct
fixpoints reached.  Exponential in the worst case — use on small instances
only (the Hypothesis test-suite does exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.core.fixes import applicable_pairs, _as_assignment
from repro.engine.relation import Relation
from repro.engine.values import UNKNOWN


class ChaseExplosion(RuntimeError):
    """Raised when the explored state space exceeds the caller's budget."""


@dataclass
class ExploreResult:
    """All distinct fixpoints reachable from one start point.

    ``fixpoints`` maps a canonical assignment signature (sorted
    ``(attr, value)`` pairs over attributes with known values) to one
    representative covered-attribute set.
    """

    fixpoints: dict
    states_visited: int

    @property
    def unique(self) -> bool:
        return len(self.fixpoints) == 1

    @property
    def final_assignments(self) -> list:
        return [dict(signature) for signature in self.fixpoints]

    def covered_sets(self) -> list:
        return list(self.fixpoints.values())


def _signature(assignment: Mapping) -> tuple:
    return tuple(
        sorted(
            ((a, v) for a, v in assignment.items() if v is not UNKNOWN),
            key=lambda item: item[0],
        )
    )


def explore_fixes(
    t,
    z0: Iterable,
    rules: Sequence,
    master: Relation,
    max_states: int = 50_000,
) -> ExploreResult:
    """Enumerate every maximal fix sequence from ``(t, Z0)``.

    A state is ``(validated attrs, their values)``; each applicable
    ``(φ, tm)`` pair is a transition (assign ``tm[Bm]`` to ``B`` and extend
    the validated set — including same-value assignments, which still extend
    coverage).  Fixpoints are states with no applicable pair at all
    (maximality, Sect. 3 condition (2)).
    """
    rules = list(rules)
    zb = frozenset(z0)
    attrs = set(zb)
    for rule in rules:
        attrs.update(rule.premise_attrs)
        attrs.add(rule.rhs)
    start = _as_assignment(t, tuple(attrs))
    for a in attrs:
        start.setdefault(a, UNKNOWN)

    fixpoints: dict = {}
    seen: set = set()
    visited = 0

    stack = [(frozenset(zb), tuple(sorted(start.items(), key=lambda kv: kv[0])))]
    while stack:
        validated, frozen = stack.pop()
        state_key = (validated, frozen)
        if state_key in seen:
            continue
        seen.add(state_key)
        visited += 1
        if visited > max_states:
            raise ChaseExplosion(
                f"explored more than {max_states} chase states; "
                f"use a smaller instance or raise max_states"
            )
        assignment = dict(frozen)
        successors = 0
        for rule, tm in applicable_pairs(assignment, validated, rules, master):
            successors += 1
            new_assignment = dict(assignment)
            new_assignment[rule.rhs] = tm[rule.rhs_m]
            stack.append(
                (
                    validated | {rule.rhs},
                    tuple(sorted(new_assignment.items(), key=lambda kv: kv[0])),
                )
            )
        if successors == 0:
            fixpoints.setdefault(_signature(assignment), validated)

    return ExploreResult(fixpoints=fixpoints, states_visited=visited)
