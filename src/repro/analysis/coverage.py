"""The coverage problem and certain regions (Sect. 4.1, Theorem 2).

``(Z, Tc)`` is a *certain region* for ``(Σ, Dm)`` iff every marked tuple has
a certain fix: a unique fix whose covered attributes reach all of ``R``.
The machinery is shared with :mod:`repro.analysis.consistency`; coverage
additionally demands full attribute coverage per chased instance.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.consistency import RegionReport, check_region
from repro.core.regions import Region
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema


def coverage_report(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
    max_instantiations: int = 200_000,
) -> RegionReport:
    """Full report: consistency and coverage for each pattern tuple."""
    return check_region(rules, master, region, schema, max_instantiations)


def is_certain_region(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
    max_instantiations: int = 200_000,
) -> bool:
    """Decide the coverage problem: is ``(Z, Tc)`` a certain region?"""
    return coverage_report(
        rules, master, region, schema, max_instantiations
    ).certain
