"""The Z-problems: Z-validating, Z-counting, Z-minimum (Sect. 4.2).

* **Z-validating** (Thm. 6, NP-complete): does some non-empty tableau make
  ``(Z, Tc)`` a certain region?  Decided by searching for a single witness
  pattern; by the observation in the proof, a concrete witness over the
  active domain exists iff any witness exists.
* **Z-counting** (Thm. 9, #P-complete): how many pattern tuples (in the
  paper's normal form: wildcards on attributes outside Σ, ``v``/``v̄`` for
  non-active constants) yield certain single-pattern regions?
* **Z-minimum** (Thm. 12, NP-complete and not ``c log n``-approximable,
  Thm. 17): the smallest ``Z`` admitting a non-empty tableau.  Exact search
  (Prop. 15's strategy: only attributes in Σ matter) plus the greedy
  heuristic the interactive framework uses in practice.

Witness search enumerates *master-projected* candidates first: patterns read
off master tuples through the rules' attribute correspondences, exactly the
shape of the certain regions in Example 9 (``(z, p, 2, _)`` for ``z, p``
ranging over ``s[zip, Mphn]``).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from repro.analysis.active_domain import (
    FreshValue,
    attribute_active_domain,
    read_attrs,
)
from repro.analysis.closure import attribute_closure, mandatory_attrs
from repro.analysis.consistency import check_pattern
from repro.core.patterns import ANY, Const, NotConst, PatternTuple
from repro.core.regions import Region
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema


def attr_master_options(attr: str, rules: Iterable) -> tuple:
    """Master attributes that R attribute *attr* is matched against."""
    out = []
    for rule in rules:
        if attr in rule.lhs:
            m = rule.master_attr_of(attr)
            if m not in out:
                out.append(m)
    return tuple(out)


def attr_pattern_constants(attr: str, rules: Iterable) -> tuple:
    """Positive pattern constants guarding *attr* across the rule set."""
    out = []
    for rule in rules:
        condition = rule.pattern.get(attr)
        if condition is not None and condition.is_constant:
            if condition.value not in out:
                out.append(condition.value)
    return tuple(out)


def master_projected_patterns(
    z: Sequence,
    rules: Sequence,
    master: Relation,
    max_rows: int = None,
    per_row_cap: int = 32,
) -> list:
    """Candidate witness patterns read off master tuples.

    For each master tuple and each attribute of ``Z``, the candidate values
    are the master values of the attribute's corresponding master columns
    plus any positive pattern constants guarding it; attributes not occurring
    in Σ become wildcards.  Duplicates are dropped, insertion order is kept.
    """
    rules = list(rules)
    per_attr_static: dict = {}
    per_attr_columns: dict = {}
    for attr in z:
        columns = attr_master_options(attr, rules)
        constants = attr_pattern_constants(attr, rules)
        per_attr_columns[attr] = columns
        if not columns and not constants:
            per_attr_static[attr] = [ANY]
        else:
            per_attr_static[attr] = list(constants)

    seen = set()
    out = []
    # No-copy sweep: masters may be large (or out-of-core stores); never
    # materialize the row list just to walk a prefix of it.
    rows = iter(master)
    if max_rows is not None:
        rows = itertools.islice(rows, max_rows)
    for tm in rows:
        option_lists = []
        for attr in z:
            options = list(per_attr_static[attr])
            for column in per_attr_columns[attr]:
                value = tm[column]
                if value not in options:
                    options.append(value)
            option_lists.append(options[:per_row_cap])
        combos = 1
        for options in option_lists:
            combos *= len(options)
        if combos > per_row_cap:
            option_lists = _trim_options(option_lists, per_row_cap)
        for combo in itertools.product(*option_lists):
            pattern = PatternTuple(dict(zip(z, combo)))
            if pattern not in seen:
                seen.add(pattern)
                out.append(pattern)
    return out


def _trim_options(option_lists: list, cap: int) -> list:
    """Shrink a per-row option product below *cap*, preferring early options."""
    trimmed = [list(options) for options in option_lists]
    while True:
        combos = 1
        for options in trimmed:
            combos *= len(options)
        if combos <= cap:
            return trimmed
        longest = max(range(len(trimmed)), key=lambda i: len(trimmed[i]))
        if len(trimmed[longest]) <= 1:
            return trimmed
        trimmed[longest].pop()


def _product_candidates(
    z: Sequence,
    rules: Sequence,
    master: Relation,
    max_candidates: int,
) -> list:
    """Exhaustive concrete candidates over per-attribute active domains."""
    readable = read_attrs(rules)
    choices = []
    for attr in z:
        if attr not in readable:
            choices.append([ANY])
            continue
        active = sorted(
            attribute_active_domain(attr, rules, master),
            key=lambda v: (type(v).__name__, repr(v)),
        )
        active.append(FreshValue(f"{attr}#cand"))
        choices.append(active)
    space = 1
    for values in choices:
        space *= len(values)
    if space > max_candidates:
        return []
    return [
        PatternTuple(dict(zip(z, combo)))
        for combo in itertools.product(*choices)
    ]


def z_validating(
    rules: Sequence,
    master: Relation,
    z: Sequence,
    schema: RelationSchema,
    max_candidates: int = 5_000,
    max_instantiations: int = 50_000,
    exhaustive: bool = False,
):
    """Find a witness pattern making ``(Z, {tc})`` certain, or ``None``.

    Tries master-projected candidates first, then (when *exhaustive* or when
    the space is small) the full active-domain product.
    """
    rules = list(rules)
    z = tuple(z)
    if attribute_closure(z, rules) < set(schema.attributes):
        return None

    candidates = master_projected_patterns(z, rules, master)
    if exhaustive or not candidates:
        candidates = candidates + [
            c
            for c in _product_candidates(z, rules, master, max_candidates)
            if c not in set(candidates)
        ]
    for pattern in candidates[:max_candidates]:
        region = Region(z, tableau=None)
        check = check_pattern(
            rules, master, region, pattern, schema, max_instantiations
        )
        if check.certain and check.instantiations > 0:
            return pattern
    return None


def z_counting(
    rules: Sequence,
    master: Relation,
    z: Sequence,
    schema: RelationSchema,
    max_candidates: int = 200_000,
    max_instantiations: int = 50_000,
) -> int:
    """Count normal-form patterns making ``(Z, {tc})`` certain (Thm. 9).

    The candidate space follows the paper's normalization: attributes not in
    Σ are forced to ``_``; every other attribute ranges over ``c`` and ``c̄``
    for ``c`` in its active domain plus one fresh symbol ``v``.
    """
    rules = list(rules)
    z = tuple(z)
    if attribute_closure(z, rules) < set(schema.attributes):
        return 0

    sigma_attrs = set()
    for rule in rules:
        sigma_attrs.update(rule.premise_attrs)
        sigma_attrs.add(rule.rhs)

    choices = []
    for attr in z:
        if attr not in sigma_attrs:
            choices.append([ANY])
            continue
        constants = sorted(
            attribute_active_domain(attr, rules, master),
            key=lambda v: (type(v).__name__, repr(v)),
        )
        constants.append(FreshValue(f"{attr}#count"))
        options = []
        for c in constants:
            options.append(Const(c))
            options.append(NotConst(c))
        choices.append(options)

    space = 1
    for options in choices:
        space *= len(options)
    if space > max_candidates:
        raise RuntimeError(
            f"Z-counting candidate space has {space} patterns "
            f"(> {max_candidates}); the problem is #P-complete (Theorem 9)"
        )

    count = 0
    for combo in itertools.product(*choices):
        pattern = PatternTuple(dict(zip(z, combo)))
        region = Region(z, tableau=None)
        check = check_pattern(
            rules, master, region, pattern, schema, max_instantiations
        )
        if check.certain and check.instantiations > 0:
            count += 1
    return count


def z_minimum_exact(
    rules: Sequence,
    master: Relation,
    schema: RelationSchema,
    max_size: int = None,
    max_candidates: int = 5_000,
    max_instantiations: int = 50_000,
    max_subsets: int = 100_000,
):
    """Smallest ``Z`` (with a witness pattern) by exhaustive subset search.

    Returns ``(Z tuple, witness PatternTuple)`` or ``None``.  Mandatory
    attributes (not fixable by any rule) are always included; the search
    ranges over the rest, smallest sets first, pruning by attribute closure.
    NP-complete in general (Thm. 12) — the *max_subsets* guard applies.
    """
    rules = list(rules)
    mandatory = tuple(
        a for a in schema.attributes if a in mandatory_attrs(schema, rules)
    )
    optional = [a for a in schema.attributes if a not in mandatory]
    limit = max_size if max_size is not None else len(schema.attributes)
    examined = 0
    for k in range(0, max(0, limit - len(mandatory)) + 1):
        for extra in itertools.combinations(optional, k):
            examined += 1
            if examined > max_subsets:
                raise RuntimeError(
                    f"Z-minimum examined more than {max_subsets} subsets; "
                    f"the problem is NP-complete (Theorem 12) - use "
                    f"z_minimum_greedy or raise max_subsets"
                )
            z = mandatory + extra
            if attribute_closure(z, rules) < set(schema.attributes):
                continue
            witness = z_validating(
                rules, master, z, schema, max_candidates, max_instantiations
            )
            if witness is not None:
                ordered = tuple(a for a in schema.attributes if a in z)
                return ordered, witness
    return None


def z_minimum_greedy(
    rules: Sequence,
    master: Relation,
    schema: RelationSchema,
    max_candidates: int = 5_000,
    max_instantiations: int = 50_000,
):
    """Heuristic Z-minimum: closure-greedy growth plus witness validation.

    Start from the mandatory attributes and repeatedly add the attribute
    whose addition grows the attribute closure the most (ties broken by
    schema order) until the closure covers R; then search for a witness,
    adding further attributes (same score) while none is found.  Returns
    ``(Z tuple, witness)`` or ``None``.
    """
    rules = list(rules)
    all_attrs = set(schema.attributes)
    z = [a for a in schema.attributes if a in mandatory_attrs(schema, rules)]

    def closure_size(candidate):
        return len(attribute_closure(z + [candidate], rules))

    while attribute_closure(z, rules) < all_attrs:
        remaining = [a for a in schema.attributes if a not in z]
        if not remaining:
            break
        best = max(remaining, key=lambda a: (closure_size(a), -schema.index_of(a)))
        z.append(best)

    while True:
        if attribute_closure(z, rules) >= all_attrs:
            witness = z_validating(
                rules, master, tuple(z), schema, max_candidates,
                max_instantiations,
            )
            if witness is not None:
                ordered = tuple(a for a in schema.attributes if a in z)
                return ordered, witness
        remaining = [a for a in schema.attributes if a not in z]
        if not remaining:
            return None
        best = max(remaining, key=lambda a: (closure_size(a), -schema.index_of(a)))
        z.append(best)
