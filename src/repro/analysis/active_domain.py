"""Active domains and fresh values.

The proof of Theorem 1 defines ``dom`` as "the set of all constants appearing
in Dm or Σ, and an additional distinct constant that is not in dom".  The
analyses quantify over *all* input tuples; restricting attention to active
values plus one fresh value per comparison context is sound because any two
values outside the active domain are indistinguishable to Σ and Dm.

Two refinements are implemented (both are pure optimizations; tests validate
them against the reductions of Sect. 4):

* **per-attribute domains** — only values that can *interact* with an
  attribute matter: pattern constants on it, master values of master
  attributes it is matched against, and master values flowing into it;
* **negation-aware fresh values** — instantiating a negated pattern ``ā``
  over an infinite domain needs a fresh witness *different from a*, even
  when ``a`` is itself outside the active domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.patterns import PatternValue
from repro.engine.relation import Relation
from repro.engine.schema import Domain


@dataclass(frozen=True)
class FreshValue:
    """A value guaranteed distinct from every active constant.

    Two fresh values are equal iff their tags are equal; no fresh value
    equals any ordinary constant.
    """

    tag: str

    def __repr__(self) -> str:
        return f"<fresh:{self.tag}>"


def read_attrs(rules: Iterable) -> set:
    """R attributes whose *values* the rules can read (lhs and pattern attrs).

    Attributes occurring only as rule targets are written but never read, so
    their values cannot influence rule applicability; the instantiation
    machinery skips them.
    """
    out = set()
    for rule in rules:
        out.update(rule.lhs)
        out.update(rule.pattern.attrs)
    return out


def global_active_domain(rules: Iterable, master: Relation) -> set:
    """All constants appearing in Σ's patterns or anywhere in Dm (Thm. 1)."""
    out = set()
    for rule in rules:
        for _, condition in rule.pattern.items():
            if condition.is_constant or condition.is_negation:
                out.add(condition.value)
    for row in master:
        out.update(row.values)
    return out


def attribute_active_domain(attr: str, rules: Iterable, master: Relation) -> set:
    """Values that can interact with R attribute *attr*.

    The union of (a) pattern constants on *attr*, (b) master values of every
    master attribute *attr* is matched against (``λφ(attr)`` for rules with
    ``attr ∈ lhs(φ)``), and (c) master values flowing into *attr* (``Bm`` of
    rules with ``rhs(φ) = attr``).
    """
    out = set()
    master_columns = set()
    for rule in rules:
        condition = rule.pattern.get(attr)
        if condition is not None and not condition.is_wildcard:
            out.add(condition.value)
        if attr in rule.lhs:
            master_columns.add(rule.master_attr_of(attr))
        if rule.rhs == attr:
            master_columns.add(rule.rhs_m)
    for column in master_columns:
        out.update(master.active_values(column))
    return out


class ActiveDomainCache:
    """Memoised per-attribute active domains for one ``(rules, master)`` pair.

    ``attribute_active_domain`` scans the master's active values for every
    master column an attribute interacts with; across the pattern tuples of
    one tableau (and across several analyses over the same inputs) those
    domains are identical, so recomputing them per pattern tuple is pure
    waste — on slow store backends it is a re-probe per attribute per
    pattern.  The cache is only sound while the master version is fixed;
    callers running across mutations must build a fresh cache.

    ``computed``/``reused`` count lookups so reports can show the saved
    work (`RegionReport.domain_stats`).
    """

    def __init__(self, rules: Iterable, master: Relation) -> None:
        self.rules = list(rules)
        self.master = master
        self._domains: dict = {}
        self.computed = 0
        self.reused = 0

    def domain(self, attr: str) -> set:
        """The active domain of *attr*, computed at most once."""
        cached = self._domains.get(attr)
        if cached is not None:
            self.reused += 1
            return cached
        self.computed += 1
        active = attribute_active_domain(attr, self.rules, self.master)
        self._domains[attr] = active
        return active

    def stats(self) -> dict:
        return {"computed": self.computed, "reused": self.reused}


def _sort_key(value):
    return (type(value).__name__, repr(value))


def instantiate_condition(
    condition: PatternValue,
    active: set,
    domain: Domain,
    attr: str,
) -> list:
    """Concrete values representing all tuples satisfying *condition*.

    For infinite domains: the matching active values plus one fresh witness
    (distinct from a negated constant when there is one).  For finite
    domains: the matching domain values, collapsed to active values plus at
    most one representative non-active value.
    """
    if condition.is_constant:
        if domain.finite and not domain.contains(condition.value):
            return []
        return [condition.value]

    if domain.finite:
        matching = [v for v in sorted(domain.values, key=_sort_key)
                    if condition.matches(v)]
        in_active = [v for v in matching if v in active]
        outside = [v for v in matching if v not in active]
        # All non-active domain values are indistinguishable; keep one.
        return in_active + outside[:1]

    values = sorted((v for v in active if condition.matches(v)), key=_sort_key)
    fresh = FreshValue(f"{attr}#0")
    if not condition.matches(fresh):
        # The negated constant is itself this fresh value (possible when a
        # caller builds patterns over fresh witnesses); pick another.
        fresh = FreshValue(f"{attr}#1")
    values.append(fresh)
    return values
