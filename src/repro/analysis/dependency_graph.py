"""The rule dependency graph (Sect. 5.1, Fig. 4).

Nodes are editing rules; there is an edge ``u → v`` iff
``rhs(u) ∈ lhs(v) ∪ lhsp(v)`` — applying ``u`` may enable ``v``, so ``u``
should be considered first.  TransFix walks this graph to propagate
"usable" marks; the graph is computed once per rule set and reused for every
input tuple ("the dependency graph of Σ remains unchanged as long as Σ is
not changed").
"""

from __future__ import annotations

from typing import Sequence

import networkx as nx


class DependencyGraph:
    """Directed dependency graph over a rule set."""

    def __init__(self, rules: Sequence):
        self.rules = list(rules)
        self._graph = nx.DiGraph()
        self._graph.add_nodes_from(range(len(self.rules)))
        for u, rule_u in enumerate(self.rules):
            for v, rule_v in enumerate(self.rules):
                if u == v:
                    continue
                if rule_u.rhs in rule_v.premise_attrs:
                    self._graph.add_edge(u, v)

    # -- structure ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rules)

    @property
    def edge_count(self) -> int:
        return self._graph.number_of_edges()

    def edges(self) -> list:
        """Edges as (rule, rule) pairs."""
        return [(self.rules[u], self.rules[v]) for u, v in self._graph.edges]

    def successors(self, index: int) -> list:
        """Indices of rules possibly enabled by applying rule *index*."""
        return list(self._graph.successors(index))

    def predecessors(self, index: int) -> list:
        return list(self._graph.predecessors(index))

    def index_of(self, rule) -> int:
        return self.rules.index(rule)

    @property
    def has_cycle(self) -> bool:
        """Whether rules can enable each other cyclically (allowed; the fix
        semantics still terminates because each attribute is set once)."""
        return not nx.is_directed_acyclic_graph(self._graph)

    def find_cycle(self):
        """One witness cycle as a list of rule names, or ``None`` if acyclic.

        ``has_cycle`` only answers yes/no; the lint layer and ``analyze``
        want to *show* the cycle.  The list names the rules in traversal
        order (the edge from the last back to the first closes the cycle);
        self-loops cannot occur (a rule's ``B`` never lies in its own
        ``X``, and a pattern condition on ``B`` does not add an edge to
        itself in this graph's u != v construction).
        """
        try:
            edges = nx.find_cycle(self._graph)
        except nx.NetworkXNoCycle:
            return None
        return [self.rules[u].name for u, v in edges]

    def stratification(self) -> list:
        """Rule indices grouped by SCC condensation, in topological order.

        A convenient application order: every rule appears after all rules
        that can enable it (up to cycles).
        """
        condensation = nx.condensation(self._graph)
        order = nx.topological_sort(condensation)
        return [sorted(condensation.nodes[c]["members"]) for c in order]

    def roots(self) -> list:
        """Indices of rules no other rule enables (chase entry points)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying graph (node labels = rule names)."""
        relabeled = nx.DiGraph()
        for u in self._graph.nodes:
            relabeled.add_node(self.rules[u].name)
        for u, v in self._graph.edges:
            relabeled.add_edge(self.rules[u].name, self.rules[v].name)
        return relabeled

    def __repr__(self) -> str:
        return (
            f"DependencyGraph({len(self.rules)} rules, "
            f"{self.edge_count} edges)"
        )
