"""PTIME analyses for direct fixes (Sect. 4.1, Theorem 5).

Direct fixes restrict the semantics in two ways: every rule has ``Xp ⊆ X``
(pattern attributes are part of the match key) and the region is *never
extended* — only rules whose lhs is inside the original ``Z`` may fire.
Under these restrictions consistency and coverage are decidable in
``O(|Σ|² |Dm|²)`` by evaluating, for every pair of rules sharing a target,
the join query ``Qφ1,φ2`` of the paper's proof.  The same plan is evaluated
in-memory here and rendered as SQL by :mod:`repro.engine.sql`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.patterns import PatternTuple
from repro.core.regions import Region
from repro.engine.relation import Relation
from repro.engine.schema import RelationSchema
from repro.engine.sql import render_q_pair, render_q_phi


class NotDirectError(ValueError):
    """A rule violates the direct-fix form ``Xp ⊆ X``."""


def _require_direct(rules: Sequence) -> list:
    bad = [r.name for r in rules if not r.is_direct]
    if bad:
        raise NotDirectError(
            f"rules {bad} have pattern attributes outside their lhs; "
            f"the direct-fix analyses (Theorem 5) require Xp ⊆ X"
        )
    return list(rules)


def sigma_z(rules: Sequence, z: frozenset) -> list:
    """``ΣZ``: rules with ``lhs ⊆ Z`` and ``rhs ∉ Z`` (the only ones that
    can ever fire without region extension)."""
    return [
        r for r in rules if set(r.lhs) <= z and r.rhs not in z
    ]


def eval_q_phi(rule, pattern: PatternTuple, master: Relation) -> list:
    """Evaluate ``Qφ``: distinct ``(X-keyed values, B value)`` pairs.

    Returns tuples ``(key_mapping, b_value)`` where ``key_mapping`` maps the
    rule's R-side lhs attributes to the master tuple's values.
    """
    seen = set()
    out = []
    for tm in master:
        if not rule.master_guard.matches(tm):
            continue
        ok = True
        for attr in rule.pattern.attrs:
            condition = rule.pattern[attr]
            if not condition.matches(tm[rule.master_attr_of(attr)]):
                ok = False
                break
        if not ok:
            continue
        for attr, master_attr in zip(rule.lhs, rule.lhs_m):
            condition = pattern.get(attr)
            if condition is not None and not condition.matches(tm[master_attr]):
                ok = False
                break
        if not ok:
            continue
        key = tuple(tm[m] for m in rule.lhs_m)
        b_value = tm[rule.rhs_m]
        if (key, b_value) in seen:
            continue
        seen.add((key, b_value))
        out.append((dict(zip(rule.lhs, key)), b_value))
    return out


@dataclass(frozen=True)
class DirectConflict:
    """A witness returned by a non-empty ``Qφ1,φ2``."""

    rule1_name: str
    rule2_name: str
    attr: str
    values: tuple
    shared_key: tuple

    def describe(self) -> str:
        return (
            f"rules {self.rule1_name} / {self.rule2_name} assign "
            f"{list(self.values)} to {self.attr!r} for shared key "
            f"{self.shared_key}"
        )


def _pattern_conflicts(rule1, rule2, pattern, master):
    """Evaluate ``Qφ1,φ2`` in-memory for one region pattern."""
    shared = tuple(a for a in rule1.lhs if a in rule2.lhs)
    rows1 = eval_q_phi(rule1, pattern, master)
    by_key: dict = {}
    for key_mapping, b_value in rows1:
        by_key.setdefault(
            tuple(key_mapping[a] for a in shared), []
        ).append(b_value)
    conflicts = []
    for key_mapping, b_value in eval_q_phi(rule2, pattern, master):
        key = tuple(key_mapping[a] for a in shared)
        for other in by_key.get(key, []):
            if other != b_value:
                conflicts.append(
                    DirectConflict(
                        rule1_name=rule1.name,
                        rule2_name=rule2.name,
                        attr=rule2.rhs,
                        values=(other, b_value),
                        shared_key=key,
                    )
                )
    return conflicts


def direct_conflicts(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
) -> list:
    """All direct-fix conflict witnesses for the region."""
    rules = _require_direct(rules)
    z = frozenset(region.attrs)
    active = sigma_z(rules, z)
    out = []
    for pattern in region.tableau:
        if not pattern.satisfiable(schema.project(region.attrs)):
            continue
        for i, rule1 in enumerate(active):
            for rule2 in active[i:]:
                if rule1.rhs != rule2.rhs:
                    continue
                out.extend(_pattern_conflicts(rule1, rule2, pattern, master))
    return out


def is_direct_consistent(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
) -> bool:
    """Theorem 5(I): consistency for direct fixes, in PTIME."""
    return not direct_conflicts(rules, master, region, schema)


def is_direct_certain_region(
    rules: Sequence,
    master: Relation,
    region: Region,
    schema: RelationSchema,
) -> bool:
    """Theorem 5(II): the coverage test for direct fixes.

    ``(Z, Tc)`` is certain iff it is consistent and, for every ``B ∈ R\\Z``
    and every pattern ``tc``, some rule targeting ``B`` has ``X ⊆ Z``,
    all-constant ``tc[X]``, a pattern entailed by ``tc``, and a master match.
    """
    rules = _require_direct(rules)
    if not is_direct_consistent(rules, master, region, schema):
        return False
    z = frozenset(region.attrs)
    remaining = [a for a in schema.attributes if a not in z]
    for pattern in region.tableau:
        if not pattern.satisfiable(schema.project(region.attrs)):
            continue
        for b in remaining:
            if not _direct_covers(rules, master, z, pattern, b):
                return False
    return True


def _direct_covers(rules, master, z, pattern, b) -> bool:
    for rule in rules:
        if rule.rhs != b or not set(rule.lhs) <= z:
            continue
        conditions = [pattern[a] for a in rule.lhs]
        if not all(c.is_constant for c in conditions):
            continue
        key = tuple(c.value for c in conditions)
        values = dict(zip(rule.lhs, key))
        if not all(
            pattern_condition.matches(values[attr])
            for attr, pattern_condition in (
                (a, rule.pattern[a]) for a in rule.pattern.attrs
            )
        ):
            continue
        matches = master.lookup(rule.lhs_m, key)
        if len(rule.master_guard):
            matches = [tm for tm in matches
                       if rule.master_guard.matches(tm)]
        if matches:
            return True
    return False


def direct_consistency_queries(
    rules: Sequence,
    master_name: str,
    region: Region,
) -> list:
    """The rendered ``Qφ1,φ2`` SQL texts (one per rule pair and pattern)."""
    rules = _require_direct(rules)
    z = frozenset(region.attrs)
    active = sigma_z(rules, z)
    queries = []
    for pattern in region.tableau:
        for i, rule1 in enumerate(active):
            for rule2 in active[i:]:
                if rule1.rhs != rule2.rhs:
                    continue
                queries.append(render_q_pair(rule1, rule2, pattern, master_name))
    return queries


__all__ = [
    "DirectConflict",
    "NotDirectError",
    "direct_conflicts",
    "direct_consistency_queries",
    "eval_q_phi",
    "is_direct_certain_region",
    "is_direct_consistent",
    "render_q_phi",
    "sigma_z",
]
