"""Attribute-level closure reasoning (value-free necessary conditions).

``attribute_closure(Z, Σ)`` is the set of attributes reachable from ``Z`` by
repeatedly firing rules whose premise (``X ∪ Xp``) is already covered.  It
over-approximates what any chase can validate: if the closure misses an
attribute, no tableau can make ``(Z, Tc)`` a certain region, which gives the
region-search algorithms a cheap pruning test.  ``one_hop_cover`` is the
myopic single-step variant the GRegion baseline scores with (Sect. 6).
"""

from __future__ import annotations

from typing import Iterable


def attribute_closure(attrs: Iterable, rules: Iterable) -> frozenset:
    """Attributes validatable from *attrs* by chaining rules (value-free)."""
    closure = set(attrs)
    pending = list(rules)
    changed = True
    while changed and pending:
        changed = False
        remaining = []
        for rule in pending:
            if rule.rhs in closure:
                continue
            if rule.premise_attrs <= closure:
                closure.add(rule.rhs)
                changed = True
            else:
                remaining.append(rule)
        pending = remaining
    return frozenset(closure)


def one_hop_cover(attr: str, rules: Iterable) -> frozenset:
    """Attributes some rule *mentioning attr in its premise* can fix.

    This is the paper's description of GRegion's score: the attributes an
    attribute "may fix", with no chaining and no requirement that the rest
    of the premise be covered.
    """
    return frozenset(
        rule.rhs for rule in rules if attr in rule.premise_attrs
    )


def mandatory_attrs(schema, rules: Iterable) -> frozenset:
    """Attributes no rule can fix: they must belong to every certain region's Z."""
    fixable = {rule.rhs for rule in rules}
    return frozenset(a for a in schema.attributes if a not in fixable)
