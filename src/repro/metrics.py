"""Evaluation metrics (Sect. 6).

The paper quantifies quality at the tuple and attribute level:

* ``recall_t``  = corrected tuples / erroneous tuples;
* ``recall_a``  = corrected attributes / erroneous attributes, where
  "corrected" counts only attributes fixed *by the algorithm* ("the number
  of corrected attributes does not include those fixed by the users");
* ``precision_a`` = corrected attributes / changed attributes;
* ``F-measure`` = harmonic mean of attribute recall and precision.

CertainFix's precision is 1.0 by construction ("since we assure that each
fixed tuple is correct, we have a 100% precision"); IncRep's is not, which
is exactly what Fig. 11 contrasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.engine.tuples import Row


@dataclass
class TupleEvaluation:
    """Per-tuple accounting of one repair run."""

    erroneous: frozenset
    corrected_by_algorithm: frozenset
    corrected_by_user: frozenset
    changed_by_algorithm: frozenset
    wrong_changes: frozenset
    fully_corrected: bool

    @property
    def was_erroneous(self) -> bool:
        return bool(self.erroneous)


def evaluate_repair(
    dirty: Row,
    clean: Row,
    final: Row,
    user_asserted: Iterable = (),
) -> TupleEvaluation:
    """Score one repaired tuple against the ground truth.

    ``user_asserted`` lists the attributes whose final values came from the
    user; corrections there are *not* credited to the algorithm.
    """
    user_asserted = frozenset(user_asserted)
    attrs = dirty.schema.attributes
    erroneous = frozenset(a for a in attrs if dirty[a] != clean[a])
    changed = frozenset(
        a for a in attrs if final[a] != dirty[a] and a not in user_asserted
    )
    corrected_algo = frozenset(
        a for a in erroneous
        if a not in user_asserted and final[a] == clean[a]
    )
    corrected_user = frozenset(
        a for a in erroneous if a in user_asserted and final[a] == clean[a]
    )
    wrong = frozenset(a for a in changed if final[a] != clean[a])
    return TupleEvaluation(
        erroneous=erroneous,
        corrected_by_algorithm=corrected_algo,
        corrected_by_user=corrected_user,
        changed_by_algorithm=changed,
        wrong_changes=wrong,
        fully_corrected=all(final[a] == clean[a] for a in attrs),
    )


@dataclass
class AggregateMetrics:
    """Corpus-level metrics in the paper's terms."""

    erroneous_tuples: int = 0
    corrected_tuples: int = 0
    erroneous_attrs: int = 0
    corrected_attrs: int = 0
    user_corrected_attrs: int = 0
    changed_attrs: int = 0
    wrong_attrs: int = 0
    tuples: int = 0

    @property
    def recall_t(self) -> float:
        if self.erroneous_tuples == 0:
            return 1.0
        return self.corrected_tuples / self.erroneous_tuples

    @property
    def recall_a(self) -> float:
        if self.erroneous_attrs == 0:
            return 1.0
        return self.corrected_attrs / self.erroneous_attrs

    @property
    def precision_a(self) -> float:
        if self.changed_attrs == 0:
            return 1.0
        return self.corrected_attrs / self.changed_attrs

    @property
    def f_measure(self) -> float:
        r, p = self.recall_a, self.precision_a
        if r + p == 0:
            return 0.0
        return 2 * r * p / (r + p)

    def merge(self, other: "AggregateMetrics") -> "AggregateMetrics":
        return AggregateMetrics(
            erroneous_tuples=self.erroneous_tuples + other.erroneous_tuples,
            corrected_tuples=self.corrected_tuples + other.corrected_tuples,
            erroneous_attrs=self.erroneous_attrs + other.erroneous_attrs,
            corrected_attrs=self.corrected_attrs + other.corrected_attrs,
            user_corrected_attrs=(
                self.user_corrected_attrs + other.user_corrected_attrs
            ),
            changed_attrs=self.changed_attrs + other.changed_attrs,
            wrong_attrs=self.wrong_attrs + other.wrong_attrs,
            tuples=self.tuples + other.tuples,
        )


def aggregate(evaluations: Iterable) -> AggregateMetrics:
    """Roll per-tuple evaluations up into corpus metrics."""
    out = AggregateMetrics()
    for e in evaluations:
        out.tuples += 1
        if e.was_erroneous:
            out.erroneous_tuples += 1
            if e.fully_corrected:
                out.corrected_tuples += 1
        out.erroneous_attrs += len(e.erroneous)
        out.corrected_attrs += len(e.corrected_by_algorithm)
        out.user_corrected_attrs += len(e.corrected_by_user)
        out.changed_attrs += len(e.changed_by_algorithm)
        out.wrong_attrs += len(e.wrong_changes)
    return out
