"""Set-Cover instances with a brute-force minimum-cover oracle.

Used to validate the Theorem 12 construction: the Z-minimum of the
constructed editing-rule instance must equal the brute-force minimum cover
size, and the greedy Z-minimum must mirror greedy set cover (Theorem 17's
L-reduction preserves approximation behaviour).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence


class SetCover:
    """Universe ``0..n-1`` and a list of subsets."""

    def __init__(self, universe_size: int, subsets: Iterable):
        self.universe_size = universe_size
        self.subsets = [frozenset(s) for s in subsets]
        for s in self.subsets:
            if not s <= set(range(universe_size)):
                raise ValueError(f"subset {sorted(s)} leaves the universe")

    @property
    def universe(self) -> frozenset:
        return frozenset(range(self.universe_size))

    def is_cover(self, chosen: Sequence) -> bool:
        covered = set()
        for index in chosen:
            covered |= self.subsets[index]
        return covered >= self.universe

    def has_cover(self) -> bool:
        return self.is_cover(range(len(self.subsets)))

    # -- brute-force oracle ------------------------------------------------------

    def minimum_cover(self):
        """The smallest cover (as a tuple of subset indices), or ``None``."""
        indices = range(len(self.subsets))
        for k in range(0, len(self.subsets) + 1):
            for combo in itertools.combinations(indices, k):
                if self.is_cover(combo):
                    return combo
        return None

    def minimum_cover_size(self):
        cover = self.minimum_cover()
        return None if cover is None else len(cover)

    def greedy_cover(self):
        """The classical greedy cover (largest marginal gain first)."""
        uncovered = set(range(self.universe_size))
        chosen = []
        while uncovered:
            best, gain = None, 0
            for i, s in enumerate(self.subsets):
                g = len(s & uncovered)
                if g > gain:
                    best, gain = i, g
            if best is None:
                return None
            chosen.append(best)
            uncovered -= self.subsets[best]
        return tuple(chosen)

    def __repr__(self) -> str:
        return (
            f"SetCover(|U|={self.universe_size}, "
            f"subsets={[sorted(s) for s in self.subsets]})"
        )
