"""The paper's hardness constructions, executable.

Each function builds the editing-rule instance used in the corresponding
proof, packaged with everything the analyzers need (schemas, master data,
rules, region/Z).  Faithfulness notes:

* **Theorem 1** (consistency ⇔ ¬SAT): schemas
  ``R(A, X1..Xm, C1..Cn, V, B)`` / ``Rm(Y0, Y1, A, V, B)``, a fixed 3-tuple
  master relation, ``Z = (A, X1..Xm)`` with ``tc = (1, _, .., _)``, and
  ``9n + 2`` rules.
* **Theorem 6 / 9** (Z-validating ⇔ SAT; Z-counting = #models): schemas
  ``R(X1..Xm, C1..Cn, V)`` / ``Rm(B1, B2, B3, C, V1, V0)``, the 8-tuple
  master relation enumerating three-variable assignments, ``3n`` rules,
  ``Z = (X1..Xm)``.
* **Theorem 12** (Z-minimum = minimum cover): schemas
  ``R(C1..Ch, X_{1,1}..X_{n,h+1})`` / ``Rm(B1, B2)``, the single master
  tuple ``(1, 1)``, and ``(h+1)·Σ|Cj| + h`` rules.  The element→subset rule
  matches every X attribute against the same master column ``B1`` (the
  paper's ``B1 .. B1`` list).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.patterns import ANY, PatternTuple
from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.relation import Relation
from repro.engine.schema import INT, RelationSchema
from repro.reductions.sat import ThreeSAT
from repro.reductions.setcover import SetCover


@dataclass
class ConsistencyInstance:
    """Everything needed to run the Theorem 1 consistency check."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    region: Region
    formula: ThreeSAT


@dataclass
class ZValidatingInstance:
    """The Theorem 6/9 instance (shared by Z-validating and Z-counting)."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    z: tuple
    formula: ThreeSAT


@dataclass
class ZMinimumInstance:
    """The Theorem 12 instance."""

    schema: RelationSchema
    master_schema: RelationSchema
    master: Relation
    rules: list
    cover: SetCover


def _x(i: int) -> str:
    return f"X{i + 1}"


def _c(j: int) -> str:
    return f"C{j + 1}"


def consistency_instance_from_3sat(formula: ThreeSAT) -> ConsistencyInstance:
    """The Theorem 1 reduction: consistent ⇔ the formula is unsatisfiable."""
    m, n = formula.num_vars, len(formula.clauses)
    x_attrs = [_x(i) for i in range(m)]
    c_attrs = [_c(j) for j in range(n)]

    schema = RelationSchema(
        "R", [("A", INT)] + [(a, INT) for a in x_attrs + c_attrs]
        + [("V", INT), ("B", INT)],
    )
    master_schema = RelationSchema(
        "Rm", [("Y0", INT), ("Y1", INT), ("A", INT), ("V", INT), ("B", INT)]
    )
    master = Relation(master_schema)
    master.insert((0, 1, 1, 1, 1))  # tm1
    master.insert((0, 1, 1, 1, 0))  # tm2
    master.insert((0, 1, 1, 0, 1))  # tm3

    rules = []
    # Σ1 .. Σn: eight rules per clause, one per truth assignment of its
    # three variables; the target column is Y0 (false) or Y1 (true).
    for j, clause in enumerate(formula.clauses):
        for b1 in (0, 1):
            for b2 in (0, 1):
                for b3 in (0, 1):
                    values = (b1, b2, b3)
                    assignment = dict(zip(clause.vars, values))
                    truthy = any(
                        bool(assignment[lit.var]) == lit.positive
                        for lit in clause.literals
                    )
                    target_col = "Y1" if truthy else "Y0"
                    pattern = PatternTuple(
                        {_x(v): val for v, val in zip(clause.vars, values)}
                    )
                    rules.append(
                        EditingRule(
                            ("A",), ("A",), _c(j), target_col, pattern,
                            name=f"clause{j + 1}:{b1}{b2}{b3}",
                        )
                    )
    # ΣC,V: V := 0 when some clause is false; V := 1 when all are true.
    for j in range(n):
        rules.append(
            EditingRule(
                ("A",), ("A",), "V", "Y0",
                PatternTuple({_c(j): 0}),
                name=f"false-clause{j + 1}",
            )
        )
    rules.append(
        EditingRule(
            ("A",), ("A",), "V", "Y1",
            PatternTuple({a: 1 for a in c_attrs}),
            name="all-clauses-true",
        )
    )
    # ΣV,B: the conflict generator (V = 1 matches two master B values).
    rules.append(
        EditingRule(("V",), ("V",), "B", "B", PatternTuple({}), name="v-to-b")
    )

    region = Region.from_patterns(
        ("A",) + tuple(x_attrs),
        [PatternTuple({"A": 1, **{a: ANY for a in x_attrs}})],
    )
    return ConsistencyInstance(
        schema=schema,
        master_schema=master_schema,
        master=master,
        rules=rules,
        region=region,
        formula=formula,
    )


def z_validating_instance_from_3sat(formula: ThreeSAT) -> ZValidatingInstance:
    """The Theorem 6 reduction: a witness tableau exists ⇔ satisfiable.

    The same instance is parsimonious for Z-counting (Theorem 9): the number
    of witness patterns equals the number of satisfying assignments.
    """
    m, n = formula.num_vars, len(formula.clauses)
    x_attrs = [_x(i) for i in range(m)]
    c_attrs = [_c(j) for j in range(n)]

    schema = RelationSchema(
        "R", [(a, INT) for a in x_attrs + c_attrs] + [("V", INT)]
    )
    master_schema = RelationSchema(
        "Rm",
        [("B1", INT), ("B2", INT), ("B3", INT), ("C", INT), ("V1", INT),
         ("V0", INT)],
    )
    master = Relation(master_schema)
    for b1 in (0, 1):
        for b2 in (0, 1):
            for b3 in (0, 1):
                master.insert((b1, b2, b3, 1, 1, 0))

    rules = []
    for j, clause in enumerate(formula.clauses):
        lhs = tuple(_x(v) for v in clause.vars)
        lhs_m = ("B1", "B2", "B3")
        rules.append(
            EditingRule(lhs, lhs_m, _c(j), "C", PatternTuple({}),
                        name=f"phi{j + 1},1")
        )
        rules.append(
            EditingRule(lhs, lhs_m, "V", "V1", PatternTuple({}),
                        name=f"phi{j + 1},2")
        )
        falsifying = clause.falsifying_values()
        pattern = PatternTuple(
            {_x(v): val for v, val in zip(clause.vars, falsifying)}
        )
        rules.append(
            EditingRule(lhs, lhs_m, "V", "V0", pattern, name=f"phi{j + 1},3")
        )

    return ZValidatingInstance(
        schema=schema,
        master_schema=master_schema,
        master=master,
        rules=rules,
        z=tuple(x_attrs),
        formula=formula,
    )


def z_minimum_instance_from_set_cover(cover: SetCover) -> ZMinimumInstance:
    """The Theorem 12 reduction: minimum |Z| = minimum cover size.

    Covering an element through its ``h + 1`` X attributes always costs more
    than the at-most-``h`` subset attributes, so optimal Z's pick subsets.
    """
    n, h = cover.universe_size, len(cover.subsets)
    c_attrs = [_c(j) for j in range(h)]
    x_attrs = [
        (i, l, f"X{i + 1},{l + 1}") for i in range(n) for l in range(h + 1)
    ]

    schema = RelationSchema(
        "R", [(a, INT) for a in c_attrs] + [(name, INT) for _, _, name in x_attrs]
    )
    master_schema = RelationSchema("Rm", [("B1", INT), ("B2", INT)])
    master = Relation(master_schema)
    master.insert((1, 1))

    def x_name(i: int, l: int) -> str:
        return f"X{i + 1},{l + 1}"

    rules = []
    for j, subset in enumerate(cover.subsets):
        for i in sorted(subset):
            for l in range(h + 1):
                rules.append(
                    EditingRule(
                        (_c(j),), ("B1",), x_name(i, l), "B2",
                        PatternTuple({}),
                        name=f"phi{j + 1},{i + 1},{l + 1}",
                    )
                )
        element_attrs = tuple(
            x_name(i, l) for i in sorted(subset) for l in range(h + 1)
        )
        if element_attrs:
            rules.append(
                EditingRule(
                    element_attrs,
                    ("B1",) * len(element_attrs),
                    _c(j),
                    "B2",
                    PatternTuple({}),
                    name=f"phi{j + 1},2",
                )
            )

    return ZMinimumInstance(
        schema=schema,
        master_schema=master_schema,
        master=master,
        rules=rules,
        cover=cover,
    )
