"""3SAT instances with brute-force oracles.

Small-instance satisfiability and model counting, used to validate the
Theorem 1/6/9 constructions: the library's consistency / Z-validating /
Z-counting answers on the constructed editing-rule instances must match the
brute-force answers on the source formulas.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Literal:
    """A literal: variable index (0-based) and polarity."""

    var: int
    positive: bool = True

    def holds(self, assignment: Sequence) -> bool:
        value = bool(assignment[self.var])
        return value if self.positive else not value

    def __repr__(self) -> str:
        return f"x{self.var}" if self.positive else f"¬x{self.var}"


@dataclass(frozen=True)
class Clause:
    """A disjunction of exactly three literals over distinct variables.

    The paper's constructions place the three clause variables in distinct
    rule attributes, so distinctness is required here (standard for 3SAT).
    """

    literals: tuple

    def __post_init__(self):
        if len(self.literals) != 3:
            raise ValueError("a 3SAT clause has exactly three literals")
        variables = [lit.var for lit in self.literals]
        if len(set(variables)) != 3:
            raise ValueError(
                f"clause variables must be distinct, got {variables}"
            )

    @property
    def vars(self) -> tuple:
        return tuple(lit.var for lit in self.literals)

    def holds(self, assignment: Sequence) -> bool:
        return any(lit.holds(assignment) for lit in self.literals)

    def falsifying_values(self) -> tuple:
        """The unique per-literal-variable values making the clause false."""
        return tuple(0 if lit.positive else 1 for lit in self.literals)

    def __repr__(self) -> str:
        return "(" + " ∨ ".join(repr(lit) for lit in self.literals) + ")"


class ThreeSAT:
    """A 3SAT formula: clauses over variables ``0..num_vars-1``."""

    def __init__(self, num_vars: int, clauses: Iterable):
        self.num_vars = num_vars
        self.clauses = list(clauses)
        for clause in self.clauses:
            for lit in clause.literals:
                if not 0 <= lit.var < num_vars:
                    raise ValueError(
                        f"literal {lit!r} out of range for {num_vars} variables"
                    )

    @classmethod
    def from_tuples(cls, num_vars: int, clause_tuples: Iterable) -> "ThreeSAT":
        """Build from e.g. ``[((0, True), (1, False), (2, True)), ...]``."""
        clauses = [
            Clause(tuple(Literal(v, p) for v, p in triple))
            for triple in clause_tuples
        ]
        return cls(num_vars, clauses)

    def holds(self, assignment: Sequence) -> bool:
        return all(clause.holds(assignment) for clause in self.clauses)

    def assignments(self):
        return itertools.product((0, 1), repeat=self.num_vars)

    # -- brute-force oracles ---------------------------------------------------

    def satisfiable(self) -> bool:
        return any(self.holds(a) for a in self.assignments())

    def model_count(self) -> int:
        return sum(1 for a in self.assignments() if self.holds(a))

    def models(self) -> list:
        return [a for a in self.assignments() if self.holds(a)]

    def __repr__(self) -> str:
        return " ∧ ".join(repr(c) for c in self.clauses) or "⊤"
