"""The paper's complexity reductions, as executable constructions.

Section 4 proves its bounds by reductions from 3SAT, #3SAT and Set Cover.
This package implements those constructions faithfully so they can serve as
*test oracles*: a brute-force SAT/Set-Cover solver on the source instance
must agree with the library's analyzers on the constructed instance.

* :mod:`repro.reductions.sat` — 3SAT instances, brute-force satisfiability
  and model counting.
* :mod:`repro.reductions.setcover` — Set-Cover instances and brute-force
  minimum covers.
* :mod:`repro.reductions.constructions` — the Theorem 1 (consistency),
  Theorem 6/9 (Z-validating / Z-counting) and Theorem 12 (Z-minimum)
  constructions.
"""

from repro.reductions.sat import Clause, Literal, ThreeSAT
from repro.reductions.setcover import SetCover
from repro.reductions.constructions import (
    ConsistencyInstance,
    ZMinimumInstance,
    ZValidatingInstance,
    consistency_instance_from_3sat,
    z_minimum_instance_from_set_cover,
    z_validating_instance_from_3sat,
)

__all__ = [
    "Clause",
    "ConsistencyInstance",
    "Literal",
    "SetCover",
    "ThreeSAT",
    "ZMinimumInstance",
    "ZValidatingInstance",
    "consistency_instance_from_3sat",
    "z_minimum_instance_from_set_cover",
    "z_validating_instance_from_3sat",
]
