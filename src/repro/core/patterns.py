"""Pattern values, pattern tuples and pattern tableaux (Sect. 2 of the paper).

A pattern tuple ``tp`` over attributes ``Xp`` assigns to each attribute one of

* a constant ``a``      — the Boolean condition ``x = a``,
* a negated constant ``ā`` — the condition ``x != a``,
* the wildcard ``_``     — no condition.

A tuple ``t`` *matches* ``tp`` (written ``t[Xp] ≈ tp[Xp]``) iff every
per-attribute condition holds.  Pattern tableaux (sets of pattern tuples over
the same attributes) appear in regions ``(Z, Tc)``; a tuple is *marked* by a
region iff it matches some pattern tuple of the tableau.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.engine.schema import Domain
from repro.engine.values import UNKNOWN


class PatternValue:
    """Abstract per-attribute pattern condition."""

    __slots__ = ()

    def matches(self, value) -> bool:
        raise NotImplementedError

    @property
    def is_wildcard(self) -> bool:
        return False

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_negation(self) -> bool:
        return False

    def satisfiable(self, domain: Domain) -> bool:
        """Whether some domain value matches this condition."""
        raise NotImplementedError


class Wildcard(PatternValue):
    """The unnamed variable ``_``: matches any value."""

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def matches(self, value) -> bool:
        return True

    @property
    def is_wildcard(self) -> bool:
        return True

    def satisfiable(self, domain: Domain) -> bool:
        return not (domain.finite and not domain.values)

    def __repr__(self) -> str:
        return "_"

    def __eq__(self, other) -> bool:
        return isinstance(other, Wildcard)

    def __hash__(self) -> int:
        return hash("Wildcard")


class Const(PatternValue):
    """A constant ``a``: the condition ``x = a``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def matches(self, value) -> bool:
        return value == self.value

    @property
    def is_constant(self) -> bool:
        return True

    def satisfiable(self, domain: Domain) -> bool:
        return domain.contains(self.value)

    def __repr__(self) -> str:
        return repr(self.value)

    def __eq__(self, other) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class NotConst(PatternValue):
    """A negated constant ``ā``: the condition ``x != a``."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def matches(self, value) -> bool:
        return value != self.value

    @property
    def is_negation(self) -> bool:
        return True

    def satisfiable(self, domain: Domain) -> bool:
        if not domain.finite:
            return True
        return any(v != self.value for v in domain.values)

    def __repr__(self) -> str:
        return f"!{self.value!r}"

    def __eq__(self, other) -> bool:
        return isinstance(other, NotConst) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("NotConst", self.value))


#: Module-level wildcard singleton (the paper's ``_``).
ANY = Wildcard()


def wildcard() -> Wildcard:
    """The wildcard pattern value ``_``."""
    return ANY


def const(value) -> Const:
    """The constant pattern value ``a`` (condition ``x = a``)."""
    return Const(value)


def neq(value) -> NotConst:
    """The negated pattern value ``ā`` (condition ``x != a``)."""
    return NotConst(value)


def as_pattern_value(value) -> PatternValue:
    """Coerce *value*: PatternValues pass through, raw values become Const."""
    if isinstance(value, PatternValue):
        return value
    return Const(value)


class PatternTuple:
    """A pattern tuple over an ordered list of distinct attributes.

    Construction accepts a mapping ``{attr: pattern_value_or_constant}`` or
    parallel ``attrs``/``values`` sequences.  The empty pattern tuple
    ``PatternTuple({})`` poses no condition (the paper's ``tp = ()``).
    """

    __slots__ = ("_attrs", "_conditions", "_hash")

    def __init__(self, conditions: Mapping = None, attrs=None, values=None):
        if conditions is not None:
            items = [(a, as_pattern_value(v)) for a, v in conditions.items()]
        else:
            attrs = tuple(attrs or ())
            values = tuple(values or ())
            if len(attrs) != len(values):
                raise ValueError("attrs and values must have the same length")
            items = [(a, as_pattern_value(v)) for a, v in zip(attrs, values)]
        self._attrs = tuple(a for a, _ in items)
        if len(set(self._attrs)) != len(self._attrs):
            raise ValueError(f"duplicate attributes in pattern tuple: {self._attrs}")
        self._conditions = {a: v for a, v in items}
        self._hash = None

    # -- access ----------------------------------------------------------------

    @property
    def attrs(self) -> tuple:
        """The attribute list ``Xp``, in order."""
        return self._attrs

    def __getitem__(self, attr: str) -> PatternValue:
        return self._conditions[attr]

    def get(self, attr: str, default=None):
        return self._conditions.get(attr, default)

    def __contains__(self, attr: str) -> bool:
        return attr in self._conditions

    def __len__(self) -> int:
        return len(self._attrs)

    def items(self) -> Iterator:
        return ((a, self._conditions[a]) for a in self._attrs)

    # -- matching ----------------------------------------------------------------

    def matches(self, row) -> bool:
        """The paper's ``t ≈ tp``: every per-attribute condition holds.

        *row* may be a :class:`repro.engine.tuples.Row` or any mapping-like
        object supporting ``row[attr]``.  An ``UNKNOWN`` value fails every
        non-wildcard condition: the analyses must not assume anything about
        attributes that have not been validated.
        """
        for attr in self._attrs:
            condition = self._conditions[attr]
            if condition.is_wildcard:
                continue
            value = row[attr]
            if value is UNKNOWN or not condition.matches(value):
                return False
        return True

    def matches_values(self, values: Mapping) -> bool:
        """Like :meth:`matches` for a plain ``{attr: value}`` dict."""
        for attr in self._attrs:
            condition = self._conditions[attr]
            if condition.is_wildcard:
                continue
            value = values[attr]
            if value is UNKNOWN or not condition.matches(value):
                return False
        return True

    # -- structure ----------------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        """No wildcards and no negations — constants only (Sect. 4 case (4))."""
        return all(c.is_constant for c in self._conditions.values())

    @property
    def is_positive(self) -> bool:
        """No negations (Sect. 4 case (3)); wildcards allowed."""
        return not any(c.is_negation for c in self._conditions.values())

    def constant_attrs(self) -> tuple:
        return tuple(a for a in self._attrs if self._conditions[a].is_constant)

    def normalized(self) -> "PatternTuple":
        """Drop wildcard attributes (the paper's normal form, Sect. 2)."""
        return PatternTuple(
            {a: c for a, c in self.items() if not c.is_wildcard}
        )

    def restrict(self, attrs: Iterable) -> "PatternTuple":
        """The sub-pattern over ``attrs ∩ Xp``, in the given order."""
        return PatternTuple(
            {a: self._conditions[a] for a in attrs if a in self._conditions}
        )

    def extend(self, updates: Mapping) -> "PatternTuple":
        """A pattern with extra/overridden attributes (used by ext(Z,Tc,φ))."""
        merged = dict(self.items())
        for a, v in updates.items():
            merged[a] = as_pattern_value(v)
        return PatternTuple(merged)

    def satisfiable(self, schema) -> bool:
        """Whether some tuple over *schema* matches (finite domains matter)."""
        return all(
            self._conditions[a].satisfiable(schema.domain_of(a))
            for a in self._attrs
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PatternTuple):
            return NotImplemented
        return self._attrs == other._attrs and self._conditions == other._conditions

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(
                (self._attrs, tuple(self._conditions[a] for a in self._attrs))
            )
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(f"{a}={self._conditions[a]!r}" for a in self._attrs)
        return f"PatternTuple({inner})"


class PatternTableau:
    """A set of pattern tuples over a common attribute list (the paper's Tc)."""

    __slots__ = ("attrs", "_patterns")

    def __init__(self, attrs: Iterable, patterns: Iterable = ()):
        self.attrs = tuple(attrs)
        self._patterns: list = []
        for p in patterns:
            self.add(p)

    def add(self, pattern: PatternTuple) -> None:
        missing = [a for a in self.attrs if a not in pattern]
        extra = [a for a in pattern.attrs if a not in self.attrs]
        if missing or extra:
            raise ValueError(
                f"pattern over {pattern.attrs} does not fit tableau over "
                f"{self.attrs} (missing {missing}, extra {extra})"
            )
        if pattern not in self._patterns:
            self._patterns.append(pattern)

    @property
    def patterns(self) -> list:
        return list(self._patterns)

    def __iter__(self) -> Iterator[PatternTuple]:
        return iter(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def marks(self, row) -> bool:
        """Whether some pattern tuple matches *row* (the marking test)."""
        return any(p.matches(row) for p in self._patterns)

    def marking_patterns(self, row) -> list:
        return [p for p in self._patterns if p.matches(row)]

    @property
    def is_concrete(self) -> bool:
        return all(p.is_concrete for p in self._patterns)

    @property
    def is_positive(self) -> bool:
        return all(p.is_positive for p in self._patterns)

    def extend_all(self, updates: Mapping) -> "PatternTableau":
        """Every pattern extended with *updates*; tableau attrs grow too."""
        new_attrs = list(self.attrs) + [a for a in updates if a not in self.attrs]
        return PatternTableau(
            new_attrs, (p.extend(updates) for p in self._patterns)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, PatternTableau):
            return NotImplemented
        return self.attrs == other.attrs and set(self._patterns) == set(
            other._patterns
        )

    def __repr__(self) -> str:
        return f"PatternTableau(attrs={list(self.attrs)}, {len(self._patterns)} patterns)"
