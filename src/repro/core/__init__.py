"""Core concepts of the paper: patterns, editing rules, regions, fixes.

* :mod:`repro.core.patterns` — pattern values (constant ``a``, negated
  constant ``ā``, wildcard ``_``), pattern tuples and tableaux (Sect. 2).
* :mod:`repro.core.rules` — editing rules and their application semantics
  ``t →(φ,tm) t'`` (Sect. 2).
* :mod:`repro.core.regions` — regions ``(Z, Tc)``, marking, and the region
  extension ``ext(Z, Tc, φ)`` (Sect. 3).
* :mod:`repro.core.fixes` — the fix chase: region-constrained application,
  fix sequences, the batched confluence checker deciding unique/certain
  fixes (Sect. 3 and the algorithm inside the proof of Theorem 4).
"""

from repro.core.patterns import (
    ANY,
    Const,
    NotConst,
    PatternTableau,
    PatternTuple,
    PatternValue,
    Wildcard,
    const,
    neq,
    wildcard,
)
from repro.core.rules import EditingRule, expand_rule_family
from repro.core.regions import Region
from repro.core.fixes import (
    ChaseOutcome,
    Conflict,
    chase,
    region_apply,
    applicable_pairs,
)

__all__ = [
    "ANY",
    "ChaseOutcome",
    "Conflict",
    "Const",
    "EditingRule",
    "NotConst",
    "PatternTableau",
    "PatternTuple",
    "PatternValue",
    "Region",
    "Wildcard",
    "applicable_pairs",
    "chase",
    "const",
    "expand_rule_family",
    "neq",
    "region_apply",
    "wildcard",
]
