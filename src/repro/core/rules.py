"""Editing rules (Sect. 2 of the paper).

An editing rule (eR) on schemas ``(R, Rm)`` is
``φ = ((X, Xm) → (B, Bm), tp[Xp])`` where

* ``X`` / ``Xm`` are equal-length lists of distinct attributes of ``R`` /
  ``Rm`` (the match keys),
* ``B ∈ R \\ X`` is the attribute the rule fixes, ``Bm ∈ Rm`` the master
  attribute it copies from,
* ``tp`` is a pattern tuple over ``Xp ⊆ R`` guarding applicability.

Semantics: ``(φ, tm)`` *applies to* ``t`` (written ``t →(φ,tm) t'``) iff
``t[Xp] ≈ tp[Xp]`` and ``t[X] = tm[Xm]``; the result sets
``t'[B] := tm[Bm]`` and leaves everything else unchanged.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.patterns import PatternTuple
from repro.engine.relation import Relation
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


class EditingRule:
    """One editing rule ``((X, Xm) → (B, Bm), tp[Xp])``.

    Attribute-list accessors follow the paper's notation: :attr:`lhs` is
    ``X``, :attr:`lhs_m` is ``Xm``, :attr:`rhs` is ``B``, :attr:`rhs_m` is
    ``Bm``, :attr:`pattern` is ``tp`` (whose attrs are ``Xp``).
    """

    __slots__ = (
        "name", "lhs", "lhs_m", "rhs", "rhs_m", "pattern", "master_guard",
        "_premise",
    )

    def __init__(
        self,
        lhs: Sequence,
        lhs_m: Sequence,
        rhs: str,
        rhs_m: str,
        pattern: PatternTuple = None,
        name: str = None,
        master_guard: PatternTuple = None,
    ):
        lhs = (lhs,) if isinstance(lhs, str) else tuple(lhs)
        lhs_m = (lhs_m,) if isinstance(lhs_m, str) else tuple(lhs_m)
        if len(lhs) != len(lhs_m):
            raise ValueError(
                f"|X| = {len(lhs)} but |Xm| = {len(lhs_m)}; the lists must "
                f"have the same length"
            )
        if len(set(lhs)) != len(lhs):
            raise ValueError(f"X has duplicate attributes: {lhs}")
        # Xm entries may repeat: the match is positional (t[Xi] = tm[Xmi]),
        # and the paper's own constructions reuse a master column (the
        # Theorem 12 reduction matches many R attributes against B1).
        if rhs in lhs:
            raise ValueError(f"B = {rhs!r} must not occur in X = {lhs}")
        self.lhs = lhs
        self.lhs_m = lhs_m
        self.rhs = rhs
        self.rhs_m = rhs_m
        self.pattern = pattern if pattern is not None else PatternTuple({})
        # Master-side guard: conditions a master tuple must satisfy to be
        # eligible for this rule.  This realizes Sect. 2's remark (3): with
        # several master relations encoded in one tagged schema, a rule for
        # master Dmi carries the guard "id = i" (σ_id=i(Rm)).
        self.master_guard = (
            master_guard if master_guard is not None else PatternTuple({})
        )
        self.name = name or self._default_name()
        self._premise = frozenset(self.lhs) | frozenset(self.pattern.attrs)

    def _default_name(self) -> str:
        return f"({','.join(self.lhs)})->{self.rhs}"

    # -- notation helpers (Sect. 2, "Notations") ---------------------------------

    @property
    def lhs_p(self) -> tuple:
        """The pattern attributes ``Xp``."""
        return self.pattern.attrs

    @property
    def premise_attrs(self) -> frozenset:
        """``X ∪ Xp`` — the attributes that must be validated to apply φ."""
        return self._premise

    def master_attr_of(self, attr: str) -> str:
        """``λφ(attr)``: the master attribute corresponding to ``attr ∈ X``."""
        try:
            return self.lhs_m[self.lhs.index(attr)]
        except ValueError:
            raise KeyError(
                f"attribute {attr!r} is not in lhs {self.lhs} of rule {self.name}"
            ) from None

    def master_attrs_of(self, attrs: Iterable) -> tuple:
        """``λφ(attrs)`` for a list of lhs attributes."""
        return tuple(self.master_attr_of(a) for a in attrs)

    # -- normal form (Sect. 2) ----------------------------------------------------

    @property
    def is_normal_form(self) -> bool:
        """True iff the pattern contains no wildcard ``_``."""
        return not any(c.is_wildcard for _, c in self.pattern.items())

    def normalized(self) -> "EditingRule":
        """The equivalent rule with wildcard pattern attributes removed."""
        return EditingRule(
            self.lhs,
            self.lhs_m,
            self.rhs,
            self.rhs_m,
            self.pattern.normalized(),
            name=self.name,
            master_guard=self.master_guard.normalized(),
        )

    # -- semantics (Sect. 2) ---------------------------------------------------

    def pattern_matches(self, t) -> bool:
        """``t[Xp] ≈ tp[Xp]``."""
        return self.pattern.matches(t)

    def master_matches(self, tm: Row) -> bool:
        """Whether *tm* satisfies the master-side guard."""
        return self.master_guard.matches(tm)

    def applies_to(self, t: Row, tm: Row) -> bool:
        """Whether ``(φ, tm)`` applies to ``t`` (pattern + key agreement +
        master guard)."""
        if not self.pattern.matches(t):
            return False
        if not self.master_guard.matches(tm):
            return False
        key = t[self.lhs]
        if any(v is UNKNOWN for v in key):
            return False
        return key == tm[self.lhs_m]

    def apply(self, t: Row, tm: Row) -> Row:
        """``t →(φ,tm) t'``; raises if the pair does not apply."""
        if not self.applies_to(t, tm):
            raise ValueError(
                f"rule {self.name} with master tuple {tm!r} does not apply to {t!r}"
            )
        return t.with_values({self.rhs: tm[self.rhs_m]})

    def apply_unchecked(self, t: Row, tm: Row) -> Row:
        """The update ``t[B] := tm[Bm]`` without re-checking applicability."""
        return t.with_values({self.rhs: tm[self.rhs_m]})

    def matching_master_rows(self, t, master: Relation) -> list:
        """Master tuples ``tm`` with ``tm[Xm] = t[X]`` (hash-index lookup).

        Does *not* check the pattern; callers combine this with
        :meth:`pattern_matches` so the (cheap) pattern test can be hoisted
        out of per-master loops.
        """
        key = t[self.lhs] if isinstance(t, Row) else tuple(t[a] for a in self.lhs)
        if any(v is UNKNOWN for v in key):
            return []
        matches = master.lookup(self.lhs_m, key)
        if len(self.master_guard):
            matches = [tm for tm in matches if self.master_guard.matches(tm)]
        return matches

    # -- misc -------------------------------------------------------------------

    def rename(self, name: str) -> "EditingRule":
        return EditingRule(
            self.lhs, self.lhs_m, self.rhs, self.rhs_m, self.pattern,
            name=name, master_guard=self.master_guard,
        )

    def with_pattern(self, pattern: PatternTuple) -> "EditingRule":
        """The same rule with a different guard (used by Suggest's φ⁺)."""
        return EditingRule(
            self.lhs, self.lhs_m, self.rhs, self.rhs_m, pattern,
            name=self.name, master_guard=self.master_guard,
        )

    @property
    def is_direct(self) -> bool:
        """Direct-fix form (Sect. 4 case (5)): ``Xp ⊆ X``."""
        return set(self.pattern.attrs) <= set(self.lhs)

    def __eq__(self, other) -> bool:
        if not isinstance(other, EditingRule):
            return NotImplemented
        return (
            self.lhs == other.lhs
            and self.lhs_m == other.lhs_m
            and self.rhs == other.rhs
            and self.rhs_m == other.rhs_m
            and self.pattern == other.pattern
            and self.master_guard == other.master_guard
        )

    def __hash__(self) -> int:
        return hash((self.lhs, self.lhs_m, self.rhs, self.rhs_m,
                     self.pattern, self.master_guard))

    def __repr__(self) -> str:
        return (
            f"EditingRule[{self.name}]: (({list(self.lhs)}, {list(self.lhs_m)}) -> "
            f"({self.rhs}, {self.rhs_m}), {self.pattern!r})"
        )


def expand_rule_family(
    lhs: Sequence,
    lhs_m: Sequence,
    rhs_attrs: Iterable,
    pattern: PatternTuple = None,
    rhs_m_attrs: Iterable = None,
    name_prefix: str = "phi",
) -> list:
    """Expand one written rule into one eR per target attribute.

    The paper writes e.g. "eR1 is expressed as three editing rules of the
    form φ1, for B1 ranging over {AC, str, city}" (Example 3).  This helper
    builds such families; by default ``Bm = B`` for each target.
    """
    rhs_attrs = list(rhs_attrs)
    rhs_m_attrs = list(rhs_m_attrs) if rhs_m_attrs is not None else rhs_attrs
    if len(rhs_attrs) != len(rhs_m_attrs):
        raise ValueError("rhs_attrs and rhs_m_attrs must align")
    return [
        EditingRule(
            lhs,
            lhs_m,
            b,
            bm,
            pattern,
            name=f"{name_prefix}[{b}]",
        )
        for b, bm in zip(rhs_attrs, rhs_m_attrs)
    ]


def rules_lhs(rules: Iterable) -> set:
    """``lhs(Σ)`` — union of X over the rule set."""
    out = set()
    for rule in rules:
        out.update(rule.lhs)
    return out


def rules_rhs(rules: Iterable) -> set:
    """``rhs(Σ)`` — the set of fixable attributes."""
    return {rule.rhs for rule in rules}


def rules_attrs(rules: Iterable) -> set:
    """``ZΣ`` — every R attribute appearing anywhere in Σ."""
    out = set()
    for rule in rules:
        out.update(rule.lhs)
        out.update(rule.pattern.attrs)
        out.add(rule.rhs)
    return out
