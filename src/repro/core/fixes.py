"""The fix chase: fixes, unique fixes and certain fixes (Sect. 3).

Given a region ``(Z, Tc)``, a rule set Σ and master data ``Dm``, a *fix* of a
marked tuple ``t`` is the result of a maximal sequence of region-constrained
rule applications; ``t`` has a *unique fix* when every such sequence ends in
the same tuple, and a *certain fix* when additionally the covered attributes
reach all of ``R`` (Sect. 3).

:func:`chase` decides unique-fix existence for one concrete start point.  It
follows the PTIME algorithm inside the proof of Theorem 4 — apply all enabled
rule/master pairs in batches, detect same-batch conflicts (step (e)) and
late-arriving conflicts (step (g)) — with one strengthening documented in
DESIGN.md §4.1: the paper's one-level ``dep()`` test for step (g) is replaced
by an exact reachability check ("is the conflicting rule's premise derivable
*without* its target attribute?") over the hypergraph of all same-value
derivations.  :mod:`repro.analysis.chase` cross-validates this against an
exhaustive order-exploring chase on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.core.regions import Region
from repro.core.rules import EditingRule
from repro.engine.store import as_master_store
from repro.engine.tuples import Row
from repro.engine.values import UNKNOWN


@dataclass(frozen=True)
class Conflict:
    """Evidence that two fix sequences diverge.

    ``kind`` is ``"same-batch"`` when two simultaneously-enabled rules assign
    different values (the paper's step (e)) and ``"order-dependent"`` when a
    later-enabled rule could have pre-empted an earlier assignment in some
    other application order (step (g)).
    """

    kind: str
    attr: str
    values: tuple
    rules: tuple

    def describe(self) -> str:
        rule_names = ", ".join(r.name for r in self.rules)
        return (
            f"{self.kind} conflict on {self.attr!r}: candidate values "
            f"{list(self.values)} via rules [{rule_names}]"
        )


@dataclass
class ChaseOutcome:
    """Result of chasing one start point.

    ``unique`` — whether all maximal fix sequences agree;
    ``assignment`` — the canonical final values (attr -> value, possibly
    ``UNKNOWN`` for never-read, never-written attributes outside Z);
    ``covered`` — the paper's "attributes covered by (Z, Tc, Σ, Dm)";
    ``zb`` — the initial (user-validated) Z;
    ``conflict`` — the divergence witness when ``unique`` is False;
    ``fired`` — the (rule, master_row, batch) applications of the canonical
    batched run, in order.
    """

    unique: bool
    assignment: dict
    covered: frozenset
    zb: frozenset
    conflict: Conflict = None
    fired: list = field(default_factory=list)
    batches: int = 0

    def is_certain(self, schema) -> bool:
        """Certain fix: unique and the covered set reaches all of R."""
        return self.unique and self.covered >= set(schema.attributes)

    def uncovered(self, schema) -> tuple:
        return tuple(a for a in schema.attributes if a not in self.covered)

    def final_row(self, schema) -> Row:
        """Materialize the fixed tuple (requires no UNKNOWN values)."""
        values = []
        for a in schema.attributes:
            v = self.assignment.get(a, UNKNOWN)
            values.append(v)
        return Row(schema, values)

    def explain(self) -> str:
        """Human-readable provenance: which rule and master tuple set each
        attribute, in application order."""
        lines = [f"validated by the user: {sorted(self.zb)}"]
        for rule, tm, batch in self.fired:
            key = dict(zip(rule.lhs, tm[rule.lhs_m]))
            lines.append(
                f"batch {batch}: {rule.rhs} := {tm[rule.rhs_m]!r} "
                f"via {rule.name} (master match on {key})"
            )
        if not self.unique:
            lines.append(f"DIVERGENT: {self.conflict.describe()}")
        elif not self.fired:
            lines.append("no rule applied")
        return "\n".join(lines)


def _as_assignment(t, schema_attrs: Sequence) -> dict:
    if isinstance(t, Row):
        return dict(zip(t.schema.attributes, t.values))
    if isinstance(t, Mapping):
        out = dict(t)
        for a in schema_attrs:
            out.setdefault(a, UNKNOWN)
        return out
    raise TypeError(f"cannot interpret {type(t).__name__} as a tuple")


def applicable_pairs(
    assignment: Mapping,
    validated: frozenset,
    rules: Iterable,
    master,
) -> Iterator:
    """Yield ``(φ, tm)`` pairs applicable under the region semantics.

    Requires ``X ∪ Xp ⊆ validated``, ``B ∉ validated``, ``t[Xp] ≈ tp`` and
    ``t[X] = tm[Xm]`` — conditions (1)–(3) of ``t →((Z,Tc),φ,tm) t'``.
    *master* is a :class:`~repro.engine.store.MasterStore` or a plain
    relation (adapted on entry).
    """
    master = as_master_store(master)
    for rule in rules:
        if not rule.premise_attrs <= validated:
            continue
        if rule.rhs in validated:
            continue
        if not rule.pattern.matches_values(assignment):
            continue
        key = tuple(assignment[a] for a in rule.lhs)
        if any(v is UNKNOWN for v in key):
            continue
        for tm in master.probe_ref(rule.lhs_m, key):
            if rule.master_guard.matches(tm):
                yield rule, tm


def _derivable_without(
    target: str,
    premises_needed: frozenset,
    edges: list,
    zb: frozenset,
) -> bool:
    """Whether every attribute of *premises_needed* is reachable from *zb*
    via same-value derivation edges that never pass through *target*."""
    derivable = set(zb)
    derivable.discard(target)
    if premises_needed <= derivable:
        return True
    pending = [e for e in edges if e[1] != target]
    changed = True
    while changed:
        changed = False
        remaining = []
        for premise, rhs in pending:
            if rhs in derivable:
                continue
            if premise <= derivable:
                derivable.add(rhs)
                changed = True
                if premises_needed <= derivable:
                    return True
            else:
                remaining.append((premise, rhs))
        pending = remaining
    return premises_needed <= derivable


def chase(
    t,
    z0: Iterable,
    rules: Sequence,
    master,
) -> ChaseOutcome:
    """Chase one start point and decide unique-fix existence.

    Parameters
    ----------
    t:
        A :class:`Row` or mapping giving values for (at least) the
        attributes in *z0*.  Attributes outside *z0* may be ``UNKNOWN``.
    z0:
        The initially validated attributes (the region's ``Z``); the caller
        has already checked that ``t`` is marked by the region.
    rules, master:
        The rule set Σ and the master data ``Dm`` — a
        :class:`~repro.engine.store.MasterStore` or a plain relation
        (adapted on entry); every master access is a keyed ``probe``.
    """
    master = as_master_store(master)
    rules = list(rules)
    zb = frozenset(z0)
    all_attrs = set(zb)
    for rule in rules:
        all_attrs.update(rule.premise_attrs)
        all_attrs.add(rule.rhs)
    assignment = _as_assignment(t, tuple(all_attrs))
    for a in all_attrs:
        assignment.setdefault(a, UNKNOWN)

    validated = set(zb)
    fired: list = []
    batches = 0
    # Rules already applied (or found target-protected) need no re-checking:
    # master data is fixed and validated values never change.
    exhausted = [False] * len(rules)

    while True:
        batch: list = []
        new_values: dict = {}
        culprit: dict = {}
        for i, rule in enumerate(rules):
            if exhausted[i]:
                continue
            if not rule.premise_attrs <= validated:
                continue
            if rule.rhs in validated:
                # Protected target; step (g) below re-examines such rules.
                exhausted[i] = True
                continue
            if not rule.pattern.matches_values(assignment):
                exhausted[i] = True
                continue
            key = tuple(assignment[a] for a in rule.lhs)
            if any(v is UNKNOWN for v in key):
                exhausted[i] = True
                continue
            matches = master.probe_ref(rule.lhs_m, key)
            exhausted[i] = True
            for tm in matches:
                if not rule.master_guard.matches(tm):
                    continue
                value = tm[rule.rhs_m]
                if rule.rhs in new_values and new_values[rule.rhs] != value:
                    return ChaseOutcome(
                        unique=False,
                        assignment=assignment,
                        covered=frozenset(validated),
                        zb=zb,
                        conflict=Conflict(
                            kind="same-batch",
                            attr=rule.rhs,
                            values=(new_values[rule.rhs], value),
                            rules=(culprit[rule.rhs], rule),
                        ),
                        fired=fired,
                        batches=batches,
                    )
                new_values[rule.rhs] = value
                culprit[rule.rhs] = rule
                batch.append((rule, tm))
        if not batch:
            break
        batches += 1
        for rule, tm in batch:
            fired.append((rule, tm, batches))
        for attr, value in new_values.items():
            assignment[attr] = value
            validated.add(attr)

    # Post-pass (exact step (g)): examine every pair applicable w.r.t. the
    # final values whose target is already validated.  Same-value pairs
    # contribute derivation edges; different-value pairs are conflicts iff
    # their premise is derivable without their own target.
    edges: list = []
    candidates: list = []
    covered = frozenset(validated)
    for rule in rules:
        if not rule.premise_attrs <= covered:
            continue
        if not rule.pattern.matches_values(assignment):
            continue
        key = tuple(assignment[a] for a in rule.lhs)
        if any(v is UNKNOWN for v in key):
            continue
        for tm in master.probe_ref(rule.lhs_m, key):
            if not rule.master_guard.matches(tm):
                continue
            value = tm[rule.rhs_m]
            if value == assignment[rule.rhs]:
                edges.append((rule.premise_attrs, rule.rhs))
            elif rule.rhs not in zb:
                candidates.append((rule, value))
    for rule, value in candidates:
        if _derivable_without(rule.rhs, rule.premise_attrs, edges, zb):
            return ChaseOutcome(
                unique=False,
                assignment=assignment,
                covered=covered,
                zb=zb,
                conflict=Conflict(
                    kind="order-dependent",
                    attr=rule.rhs,
                    values=(assignment[rule.rhs], value),
                    rules=(rule,),
                ),
                fired=fired,
                batches=batches,
            )

    return ChaseOutcome(
        unique=True,
        assignment=assignment,
        covered=covered,
        zb=zb,
        fired=fired,
        batches=batches,
    )


def region_apply(t: Row, region: Region, rule: EditingRule, tm: Row):
    """One step ``t →((Z,Tc),φ,tm) t'`` with all side conditions checked.

    Returns ``(t', ext(Z, Tc, φ))``.  Raises ``ValueError`` when a side
    condition fails, naming the violated one — useful in examples and tests.
    """
    if not region.marks(t):
        raise ValueError(f"tuple is not marked by region {region!r}")
    z = region.attr_set
    if not set(rule.lhs) <= z:
        raise ValueError(
            f"X = {list(rule.lhs)} not contained in Z = {list(region.attrs)}"
        )
    if not set(rule.pattern.attrs) <= z:
        raise ValueError(
            f"Xp = {list(rule.pattern.attrs)} not contained in Z = "
            f"{list(region.attrs)}"
        )
    if rule.rhs in z:
        raise ValueError(f"B = {rule.rhs!r} is protected (already in Z)")
    if not rule.applies_to(t, tm):
        raise ValueError(f"({rule.name}, {tm!r}) does not apply to {t!r}")
    return rule.apply_unchecked(t, tm), region.extend(rule)


def fix_sequence(t: Row, region: Region, steps: Iterable):
    """Apply an explicit sequence of ``(rule, master_row)`` steps.

    Implements the paper's ``t →*((Z,Tc),Σ,Dm) t'`` for a chosen order;
    returns the final tuple and the final (extended) region.
    """
    current, reg = t, region
    for rule, tm in steps:
        current, reg = region_apply(current, reg, rule, tm)
    return current, reg


def is_fixpoint(t: Row, region: Region, rules: Iterable, master) -> bool:
    """Condition (2) of the fix definition: no pair ``(φ, tm)`` applies.

    Note the quantification: the sequence is maximal only when *no* pair is
    applicable at all — a pair that would re-assign the value already present
    still applies (and would extend ``Z``), so its mere applicability means
    the sequence can be continued.
    """
    assignment = dict(zip(t.schema.attributes, t.values))
    validated = frozenset(region.attrs)
    for _rule, _tm in applicable_pairs(assignment, validated, rules, master):
        return False
    return True
