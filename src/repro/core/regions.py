"""Regions ``(Z, Tc)`` and the region extension (Sect. 3 of the paper).

A region is a pair of a list ``Z`` of distinct R attributes and a pattern
tableau ``Tc`` over ``Z``.  A tuple ``t`` is *marked* by ``(Z, Tc)`` iff it
matches some pattern tuple of ``Tc``.  Regions drive the fix semantics:

* applying ``(φ, tm)`` to a marked ``t`` w.r.t. ``(Z, Tc)`` requires
  ``X ⊆ Z``, ``Xp ⊆ Z`` and ``B ∉ Z`` (validated premises, protected
  targets);
* a successful application *extends* the region: ``ext(Z, Tc, φ)`` adds
  ``B`` to ``Z`` and pads every pattern tuple with ``tc[B] = _``
  (Example 7).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.core.patterns import ANY, PatternTableau, PatternTuple
from repro.core.rules import EditingRule


class Region:
    """A region ``(Z, Tc)``.

    ``Z`` is kept as an ordered tuple of distinct attributes;
    ``Tc`` is a :class:`PatternTableau` over exactly those attributes.
    """

    __slots__ = ("attrs", "tableau")

    def __init__(self, attrs: Sequence, tableau: PatternTableau = None):
        attrs = (attrs,) if isinstance(attrs, str) else tuple(attrs)
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"Z has duplicate attributes: {attrs}")
        if tableau is None:
            tableau = PatternTableau(attrs)
        if tuple(tableau.attrs) != attrs:
            raise ValueError(
                f"tableau attributes {tableau.attrs} differ from Z {attrs}"
            )
        self.attrs = attrs
        self.tableau = tableau

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_patterns(cls, attrs: Sequence, patterns: Iterable) -> "Region":
        """Build a region from ``{attr: pattern_value}`` mappings or tuples."""
        attrs = tuple(attrs)
        tableau = PatternTableau(attrs)
        for p in patterns:
            if isinstance(p, PatternTuple):
                tableau.add(p)
            elif isinstance(p, Mapping):
                tableau.add(PatternTuple({a: p[a] for a in attrs}))
            else:
                tableau.add(PatternTuple(attrs=attrs, values=p))
        return cls(attrs, tableau)

    @classmethod
    def single(cls, attrs: Sequence, pattern) -> "Region":
        """A region whose tableau has exactly one pattern tuple."""
        return cls.from_patterns(attrs, [pattern])

    # -- basics -------------------------------------------------------------------

    @property
    def attr_set(self) -> frozenset:
        return frozenset(self.attrs)

    def marks(self, row) -> bool:
        """Whether *row* is marked by this region."""
        return self.tableau.marks(row)

    def marking_patterns(self, row) -> list:
        return self.tableau.marking_patterns(row)

    @property
    def is_concrete(self) -> bool:
        return self.tableau.is_concrete

    @property
    def is_positive(self) -> bool:
        return self.tableau.is_positive

    def __len__(self) -> int:
        return len(self.attrs)

    # -- extension (Sect. 3) -----------------------------------------------------

    def extend(self, rule: EditingRule) -> "Region":
        """``ext(Z, Tc, φ)``: include ``B = rhs(φ)`` with wildcard patterns.

        Raises if ``B`` is already in ``Z`` — by the region semantics a rule
        whose target is validated must not be applied.
        """
        b = rule.rhs
        if b in self.attr_set:
            raise ValueError(
                f"cannot extend region by {b!r}: already in Z = {self.attrs}"
            )
        return Region(
            self.attrs + (b,),
            self.tableau.extend_all({b: ANY}),
        )

    def extend_attrs(self, attrs: Iterable) -> "Region":
        """Extend by several attributes at once (wildcard patterns)."""
        new = [a for a in attrs if a not in self.attr_set]
        if not new:
            return self
        updates = {a: ANY for a in new}
        return Region(self.attrs + tuple(new), self.tableau.extend_all(updates))

    def restrict_tableau(self, patterns: Iterable) -> "Region":
        """The same Z with a different set of pattern tuples."""
        return Region(self.attrs, PatternTableau(self.attrs, patterns))

    def single_pattern_regions(self):
        """One single-pattern region per tableau row (Theorem 4's reduction
        of multi-pattern checks to one-by-one pattern checks)."""
        return [
            Region(self.attrs, PatternTableau(self.attrs, [p]))
            for p in self.tableau
        ]

    def __eq__(self, other) -> bool:
        if not isinstance(other, Region):
            return NotImplemented
        return self.attrs == other.attrs and self.tableau == other.tableau

    def __repr__(self) -> str:
        return f"Region(Z={list(self.attrs)}, |Tc|={len(self.tableau)})"
