"""Experiment configuration and dataset loading.

The paper's defaults (d% = 30, |Dm| = 10K, n% = 20, 10K input tuples) are
scaled down for a pure-Python laptop run; the *relative* spans of every
sweep are preserved.  All generators are deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.datasets import make_dblp, make_dirty_dataset, make_hosp


@dataclass(frozen=True)
class ExperimentConfig:
    """One experimental setting (the paper's d%, n%, |Dm|, |D| knobs)."""

    dataset: str = "hosp"
    duplicate_rate: float = 0.3
    noise_rate: float = 0.2
    master_size: int = 1500
    input_size: int = 250
    seed: int = 42

    def with_(self, **kwargs) -> "ExperimentConfig":
        return replace(self, **kwargs)


DEFAULTS = {
    "hosp": ExperimentConfig(dataset="hosp"),
    "dblp": ExperimentConfig(dataset="dblp"),
}

_HOSP_MEASURES = 10

_dataset_cache: dict = {}


def load_dataset(config: ExperimentConfig):
    """Build (and memoize) the master data bundle for a config."""
    key = (config.dataset, config.master_size, config.seed)
    bundle = _dataset_cache.get(key)
    if bundle is None:
        if config.dataset == "hosp":
            hospitals = max(1, config.master_size // _HOSP_MEASURES)
            bundle = make_hosp(
                num_hospitals=hospitals,
                num_measures=_HOSP_MEASURES,
                seed=config.seed,
            )
        elif config.dataset == "dblp":
            bundle = make_dblp(
                num_papers=config.master_size,
                num_authors=max(20, config.master_size // 3),
                num_venues=max(8, config.master_size // 20),
                seed=config.seed,
            )
        else:
            raise ValueError(f"unknown dataset {config.dataset!r}")
        _dataset_cache[key] = bundle
    return bundle


def load_workload(config: ExperimentConfig):
    """Dataset bundle + dirty input stream for a config."""
    bundle = load_dataset(config)
    data = make_dirty_dataset(
        bundle,
        size=config.input_size,
        duplicate_rate=config.duplicate_rate,
        noise_rate=config.noise_rate,
        seed=config.seed + 1,
    )
    return bundle, data
