"""Stream runner: monitor a dirty workload and collect per-round metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.metrics import AggregateMetrics, aggregate, evaluate_repair
from repro.repair.certainfix import CertainFix
from repro.repair.oracle import SimulatedUser


@dataclass
class StreamResult:
    """Sessions plus the workload they were run on."""

    sessions: list
    data: list
    engine: CertainFix

    @property
    def max_rounds(self) -> int:
        return max((s.round_count for s in self.sessions), default=0)

    def metrics_after_round(self, k: int) -> AggregateMetrics:
        return metrics_after_round(self.sessions, self.data, k)

    def final_metrics(self) -> AggregateMetrics:
        evaluations = []
        for session, dirty_tuple in zip(self.sessions, self.data):
            evaluations.append(
                evaluate_repair(
                    dirty_tuple.dirty,
                    dirty_tuple.clean,
                    session.final,
                    session.attrs_asserted_by_user,
                )
            )
        return aggregate(evaluations)

    def round_histogram(self) -> dict:
        histogram: dict = {}
        for session in self.sessions:
            histogram[session.round_count] = (
                histogram.get(session.round_count, 0) + 1
            )
        return dict(sorted(histogram.items()))

    def mean_round_latency(self) -> float:
        """Average wall-clock per interaction round (Fig. 12's y-axis)."""
        total, count = 0.0, 0
        for session in self.sessions:
            for r in session.rounds:
                total += r.elapsed
                count += 1
        return total / count if count else 0.0


def metrics_after_round(sessions: Iterable, data: Iterable, k: int) -> AggregateMetrics:
    """Aggregate metrics using each tuple's state after round *k*."""
    evaluations = []
    for session, dirty_tuple in zip(sessions, data):
        row, asserted = session.state_after_round(k)
        evaluations.append(
            evaluate_repair(dirty_tuple.dirty, dirty_tuple.clean, row, asserted)
        )
    return aggregate(evaluations)


def run_stream(
    bundle,
    data,
    use_bdd: bool = False,
    initial_region_rank: int = 0,
    regions: list = None,
    engine: CertainFix = None,
    validate_uniqueness: bool = True,
) -> StreamResult:
    """Monitor every dirty tuple of *data* with CertainFix.

    Passing a prebuilt *engine* lets callers reuse precomputed regions and
    caches across configurations (the paper computes regions "once and
    repeatedly used as long as Σ and Dm are unchanged").
    """
    if engine is None:
        engine = CertainFix(
            bundle.rules,
            bundle.master,
            bundle.schema,
            regions=regions,
            use_bdd=use_bdd,
            initial_region_rank=initial_region_rank,
            validate_uniqueness=validate_uniqueness,
        )
    sessions = []
    for dirty_tuple in data:
        oracle = SimulatedUser(dirty_tuple.clean)
        sessions.append(engine.fix(dirty_tuple.dirty, oracle))
    return StreamResult(sessions=sessions, data=list(data), engine=engine)
