"""One driver per table/figure of the paper's evaluation.

Each function returns ``(headers, rows)`` ready for
:func:`repro.experiments.tables.format_table`; the benchmark modules wrap
them with pytest-benchmark timers and shape assertions, and
``benchmarks/run_all.py`` collects them into EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.constraints.increp import IncRep
from repro.experiments.config import ExperimentConfig, load_dataset, load_workload
from repro.experiments.runner import run_stream
from repro.metrics import aggregate, evaluate_repair
from repro.repair.certainfix import CertainFix
from repro.repair.region_search import comp_c_region, g_region


def table1_region_sizes(configs) -> tuple:
    """Exp-1(1): |Z| of the best CompCRegion region vs GRegion's.

    Paper: HOSP 2 vs 4; DBLP 5 vs 9.
    """
    headers = ("dataset", "CompCRegion", "GRegion")
    rows = []
    for config in configs:
        bundle = load_dataset(config)
        comp = comp_c_region(bundle.rules, bundle.master, bundle.schema)
        greedy = g_region(bundle.rules, bundle.master, bundle.schema)
        rows.append(
            (
                config.dataset,
                len(comp[0].region.attrs) if comp else None,
                len(greedy.region.attrs) if greedy else None,
            )
        )
    return headers, rows


def table2_initial_suggestion(configs) -> tuple:
    """Exp-1(2): F-measure with the highest-quality initial region (CRHQ)
    vs a median-quality one (CRMQ).

    Paper: HOSP 0.74 / 0.70; DBLP 0.79 / 0.69.
    """
    headers = ("dataset", "F(CRHQ)", "F(CRMQ)")
    rows = []
    for config in configs:
        bundle, data = load_workload(config)
        regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
        median_rank = len(regions) // 2
        f_values = []
        for rank in (0, median_rank):
            result = run_stream(bundle, data, initial_region_rank=rank)
            f_values.append(result.final_metrics().f_measure)
        rows.append((config.dataset, f_values[0], f_values[1]))
    return headers, rows


def fig9_interactions(config: ExperimentConfig, max_round: int = 6) -> tuple:
    """Fig. 9: tuple-level and attribute-level recall per interaction round."""
    bundle, data = load_workload(config)
    result = run_stream(bundle, data)
    headers = ("round", "recall_t", "recall_a", "tuples_done")
    rows = []
    done = 0
    histogram = result.round_histogram()
    for k in range(1, max(max_round, result.max_rounds) + 1):
        metrics = result.metrics_after_round(k)
        done += histogram.get(k, 0)
        rows.append((k, metrics.recall_t, metrics.recall_a, done))
    return headers, rows


_SWEEPS = {
    "d%": ("duplicate_rate", (0.1, 0.2, 0.3, 0.4, 0.5)),
    "|Dm|": ("master_size", (500, 1000, 1500, 2000, 2500)),
    "n%": ("noise_rate", (0.1, 0.2, 0.3, 0.4, 0.5)),
}


def fig10_tuple_recall(config: ExperimentConfig, vary: str, rounds=(1, 2, 3, 4)) -> tuple:
    """Fig. 10: recall_t after k rounds while varying d% / |Dm| / n%."""
    field, values = _SWEEPS[vary]
    headers = (vary,) + tuple(f"recall_t@k={k}" for k in rounds)
    rows = []
    for value in values:
        bundle, data = load_workload(config.with_(**{field: value}))
        result = run_stream(bundle, data)
        rows.append(
            (value,)
            + tuple(result.metrics_after_round(k).recall_t for k in rounds)
        )
    return headers, rows


def fig11_f_measure(config: ExperimentConfig, vary: str, rounds=(1, 2, 4)) -> tuple:
    """Fig. 11: F-measure after k rounds (and IncRep at k=1) under a sweep."""
    field, values = _SWEEPS[vary]
    headers = (vary,) + tuple(f"F@k={k}" for k in rounds) + ("F(IncRep)",)
    rows = []
    for value in values:
        bundle, data = load_workload(config.with_(**{field: value}))
        result = run_stream(bundle, data)
        increp = IncRep(bundle.rules, bundle.master, bundle.schema)
        evaluations = [
            evaluate_repair(dt.dirty, dt.clean, increp.repair(dt.dirty).row, ())
            for dt in data
        ]
        increp_f = aggregate(evaluations).f_measure
        rows.append(
            (value,)
            + tuple(result.metrics_after_round(k).f_measure for k in rounds)
            + (increp_f,)
        )
    return headers, rows


def fig12_scalability(config: ExperimentConfig, vary: str) -> tuple:
    """Fig. 12: mean per-round latency, CertainFix vs CertainFix⁺.

    ``vary`` is ``"|Dm|"`` (a/b) or ``"|D|"`` (c/d).
    """
    if vary == "|Dm|":
        values = (500, 1000, 1500, 2000, 2500)
        configs = [config.with_(master_size=v) for v in values]
    elif vary == "|D|":
        values = (10, 50, 100, 250, 500)
        configs = [config.with_(input_size=v) for v in values]
    else:
        raise ValueError(f"unknown sweep axis {vary!r}")
    headers = (vary, "CertainFix (ms/round)", "CertainFix+ (ms/round)",
               "cache hit rate")
    rows = []
    for value, sweep_config in zip(values, configs):
        bundle, data = load_workload(sweep_config)
        plain = run_stream(bundle, data, use_bdd=False)
        cached = run_stream(bundle, data, use_bdd=True)
        stats = cached.engine.cache_stats
        rows.append(
            (
                value,
                plain.mean_round_latency() * 1000,
                cached.mean_round_latency() * 1000,
                stats.hit_rate if stats else 0.0,
            )
        )
    return headers, rows


def ablation_transfix(config: ExperimentConfig) -> tuple:
    """A1/A2: TransFix dependency-graph order and indexed lookups."""
    from repro.analysis.dependency_graph import DependencyGraph
    from repro.repair.transfix import transfix, transfix_naive

    bundle, data = load_workload(config)
    graph = DependencyGraph(bundle.rules)
    regions = comp_c_region(bundle.rules, bundle.master, bundle.schema)
    z0 = regions[0].region.attrs

    variants = (
        ("dep-graph + index", lambda row: transfix(
            row, z0, bundle.rules, bundle.master, graph, use_index=True)),
        ("naive + index", lambda row: transfix_naive(
            row, z0, bundle.rules, bundle.master, use_index=True)),
        ("dep-graph + scan", lambda row: transfix(
            row, z0, bundle.rules, bundle.master, graph, use_index=False)),
    )
    clean_rows = [dt.clean for dt in data]
    headers = ("variant", "ms/tuple", "fixed/tuple")
    rows = []
    for name, fn in variants:
        started = time.perf_counter()
        fixed_total = 0
        for row in clean_rows:
            fixed_total += len(fn(row).applied)
        elapsed = time.perf_counter() - started
        rows.append(
            (name, elapsed * 1000 / len(clean_rows),
             fixed_total / len(clean_rows))
        )
    return headers, rows
