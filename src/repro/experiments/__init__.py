"""Experiment drivers reproducing the paper's evaluation (Sect. 6).

One function per table/figure; each returns plain data rows that the
benchmark harnesses (``benchmarks/``) print in the paper's format and that
``benchmarks/run_all.py`` assembles into EXPERIMENTS.md.

Scaling note: the paper's defaults are ``d% = 30``, ``|Dm| = 10K``,
``n% = 20``, with up to 10M input tuples on a C++ implementation.  The
drivers keep the same parameter *spans* but scale sizes to laptop-Python
budgets (DESIGN.md §5); every claim checked is about curve shapes, not
absolute numbers.
"""

from repro.experiments.config import DEFAULTS, ExperimentConfig, load_dataset
from repro.experiments.runner import StreamResult, metrics_after_round, run_stream
from repro.experiments.tables import format_table

__all__ = [
    "DEFAULTS",
    "ExperimentConfig",
    "StreamResult",
    "format_table",
    "load_dataset",
    "metrics_after_round",
    "run_stream",
]
