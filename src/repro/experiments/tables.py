"""Plain-text table formatting for the experiment harnesses."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence, rows: Iterable, title: str = None) -> str:
    """Render rows as an aligned text table (numbers get 3 decimals)."""
    rendered_rows = []
    for row in rows:
        rendered_rows.append([_cell(v) for v in row])
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
